// Package fleet is a trace-driven, deterministic fleet simulator: it
// schedules a stream of GEMM jobs (input pattern, datatype, size,
// arrival time) onto N heterogeneous simulated devices, integrates
// per-device power and temperature over time with the repository's
// switched-capacitance power model, enforces an aggregate power cap
// and per-device thermal throttling, and emits the telemetry a
// datacenter operator provisions against: fleet watts, per-device
// utilization, throttle events and job latency percentiles.
//
// The paper's core result — GEMM power depends strongly on input data
// encoding — matters most at this scale: two fleets running the same
// kernel shapes can differ by tens of kilowatts purely because of what
// bits flow through them. The simulator takes per-job operating points
// from an Oracle; the serving-backed oracles route every lookup
// through POST /predict/batch, so one tick asking about thousands of
// queued jobs costs one simulation per distinct (device, dtype,
// pattern, size) key.
//
// The integration core is the event-driven Engine (engine.go): Run
// wraps it for offline trace replay, and Controller (live.go) wraps
// the same engine as a long-running HTTP control plane that admits
// jobs as they arrive. Because both paths share one engine and the
// controller stamps arrivals with simulated time, a live session's
// recorded trace replays offline to a byte-identical report.
//
// Everything is deterministic: equal configs and traces produce
// byte-identical reports. There is no wall clock, no map-order
// dependence and no unseeded randomness anywhere in the loop.
package fleet

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/sched"
	"repro/internal/serve"
)

// Config describes the simulated fleet and the integration controls.
type Config struct {
	// Devices lists the fleet instances; repeat a preset to model
	// several boards of one model. Must be non-empty.
	Devices []*device.Device
	// Oracle supplies per-(device, job spec) operating points
	// (nil = NewModelOracle, the offline simulation path).
	Oracle Oracle
	// Policy decides job placement (nil = sched.EarliestCompletion,
	// the simulator's historical fixed behaviour). Policies observe
	// per-instance backlog, temperature and the Oracle's operating
	// point for the job on every eligible instance.
	Policy sched.Policy
	// PowerCapW is the aggregate fleet power budget in watts; when the
	// sum of device demands exceeds it, every busy device's clocks are
	// scaled down proportionally (reason "cap"). 0 disables the cap.
	// A cap below the fleet's idle floor stalls all progress — jobs
	// then time out at HorizonS.
	PowerCapW float64
	// AmbientC overrides every device's inlet temperature (rack hot
	// aisle); 0 keeps each preset's own ambient. Raising it above a
	// preset's calibration point is how fleet-level thermal throttling
	// emerges even for configurations the device-local governor allows.
	AmbientC float64
	// TickS is the integration step (default 1 ms).
	TickS float64
	// SamplePeriodS is the telemetry sampling spacing (default 100 ms,
	// the paper's DCGM period).
	SamplePeriodS float64
	// ThermalTauS is the first-order thermal time constant used to
	// integrate device temperature toward its steady state
	// (default 2 s).
	ThermalTauS float64
	// HorizonS aborts the simulation if jobs are still unfinished at
	// this time (default 300 s). A long-running controller sets this
	// far beyond any expected session length.
	HorizonS float64
	// RecordSamples keeps the full telemetry timeline in the report
	// (Report.Samples); off by default because long runs produce many
	// samples.
	RecordSamples bool
}

func (c Config) withDefaults() Config {
	if c.Oracle == nil {
		c.Oracle = NewModelOracle()
	}
	if c.Policy == nil {
		c.Policy = sched.EarliestCompletion{}
	}
	if c.TickS <= 0 {
		c.TickS = 1e-3
	}
	if c.SamplePeriodS <= 0 {
		c.SamplePeriodS = 0.1
	}
	if c.ThermalTauS <= 0 {
		c.ThermalTauS = 2.0
	}
	if c.HorizonS <= 0 {
		c.HorizonS = 300
	}
	return c
}

// resolveChunk bounds one Oracle.Resolve call so HTTP-backed oracles
// stay inside the server's batch item limit.
const resolveChunk = serve.MaxBatchItems

// runJob is a scheduled job plus its resolved operating point.
type runJob struct {
	job      *Job
	op       OperatingPoint
	serviceS float64 // iterations × iter time at full clocks
}

// instance is the mutable state of one fleet device.
type instance struct {
	dev     *device.Device
	id      string
	ambient float64

	queue   []*runJob
	cur     *runJob
	doneIts float64

	tempC    float64
	maxTempC float64
	backlogS float64

	busyS      float64
	energyJ    float64
	peakPowerW float64
	capS       float64
	thermalS   float64
	jobsRun    int

	// open throttle-event start times, negative when no event is open.
	capEventStart     float64
	thermalEventStart float64
}

// Run simulates the trace on the fleet and reduces it to a Report.
// The trace is not mutated; equal inputs produce equal reports. It is
// the offline path over the event-driven Engine: submit every job up
// front, tick to drain.
func Run(ctx context.Context, cfg Config, trace *Trace) (*Report, error) {
	if trace == nil || len(trace.Jobs) == 0 {
		return nil, fmt.Errorf("fleet: empty trace")
	}
	jobs := make([]Job, len(trace.Jobs))
	copy(jobs, trace.Jobs)
	t := &Trace{Jobs: jobs}
	if err := t.normalize(); err != nil {
		return nil, err
	}

	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	ops, err := resolveOperatingPoints(ctx, eng.cfg.Oracle, t, eng.models)
	if err != nil {
		return nil, err
	}
	eng.AddOperatingPoints(ops)
	for i := range t.Jobs {
		if err := eng.Submit(&t.Jobs[i]); err != nil {
			return nil, err
		}
	}
	for {
		state, err := eng.Tick(ctx)
		if err != nil {
			return nil, err
		}
		if state != Running {
			break
		}
	}
	return eng.Report(), nil
}

// buildInstances expands the device list into per-instance state and
// collects the distinct model names present in the fleet.
func buildInstances(cfg Config) ([]*instance, []string, error) {
	counts := map[string]int{}
	var insts []*instance
	var models []string
	for _, d := range cfg.Devices {
		if counts[d.Name] == 0 {
			models = append(models, d.Name)
		}
		ambient := d.Thermal.AmbientC
		if cfg.AmbientC > 0 {
			ambient = cfg.AmbientC
		}
		if ambient >= d.Thermal.ThrottleTempC {
			return nil, nil, fmt.Errorf("fleet: ambient %.1f°C is at or above %s's throttle point %.1f°C",
				ambient, d.Name, d.Thermal.ThrottleTempC)
		}
		insts = append(insts, &instance{
			dev:               d,
			id:                fmt.Sprintf("%s#%d", d.Name, counts[d.Name]),
			ambient:           ambient,
			tempC:             ambient,
			maxTempC:          ambient,
			capEventStart:     -1,
			thermalEventStart: -1,
		})
		counts[d.Name]++
	}
	return insts, models, nil
}

// resolveOperatingPoints asks the oracle for every (candidate model ×
// job spec) pair the scheduler could need, in deterministic order and
// bounded chunks. Duplicate keys across jobs are intentionally left in
// the request stream — coalescing them is the oracle's job, and the
// coalescing ratio is part of what a fleet run demonstrates.
func resolveOperatingPoints(ctx context.Context, oracle Oracle, t *Trace, models []string) (map[OpKey]OperatingPoint, error) {
	var keys []OpKey
	seenPinned := map[string]bool{}
	for _, m := range models {
		seenPinned[m] = true
	}
	for i := range t.Jobs {
		j := &t.Jobs[i]
		ks, err := jobKeys(j, models, seenPinned)
		if err != nil {
			return nil, err
		}
		keys = append(keys, ks...)
	}

	ops := make(map[OpKey]OperatingPoint)
	for start := 0; start < len(keys); start += resolveChunk {
		end := start + resolveChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[start:end]
		resolved, err := oracle.Resolve(ctx, chunk)
		if err != nil {
			return nil, err
		}
		for i, k := range chunk {
			ops[k] = resolved[i]
		}
	}
	return ops, nil
}

// jobKeys expands one job into the operating-point keys the scheduler
// could need: one key on its pinned model, or one per fleet model when
// unpinned. The live controller uses the same expansion per
// submission, so live and replayed runs ask the oracle identical
// question streams and the Report's OracleStats match byte-for-byte.
func jobKeys(j *Job, models []string, inFleet map[string]bool) ([]OpKey, error) {
	if j.Device != "" {
		if !inFleet[j.Device] {
			return nil, fmt.Errorf("fleet: job %s pinned to %q, which is not in the fleet", j.ID, j.Device)
		}
		return []OpKey{{Device: j.Device, DType: j.dt.String(), Pattern: j.Pattern, Size: j.Size}}, nil
	}
	keys := make([]OpKey, len(models))
	for i, m := range models {
		keys[i] = OpKey{Device: m, DType: j.dt.String(), Pattern: j.Pattern, Size: j.Size}
	}
	return keys, nil
}

// dynBacklogJ is the committed full-clock dynamic energy on the
// instance: Σ (job power − idle floor) × remaining service over the
// running and queued jobs. Recomputed exactly at each admission
// instead of integrated, so scheduling heuristics never see drift.
func (in *instance) dynBacklogJ() float64 {
	var j float64
	if in.cur != nil {
		remaining := (float64(in.cur.job.Iterations) - in.doneIts) * in.cur.op.IterTimeS
		if remaining > 0 {
			j += (in.cur.op.PowerW - in.dev.IdleWatts) * remaining
		}
	}
	for _, rj := range in.queue {
		j += (rj.op.PowerW - in.dev.IdleWatts) * rj.serviceS
	}
	return j
}

// queued is the number of unfinished jobs placed on the instance.
func (in *instance) queued() int {
	n := len(in.queue)
	if in.cur != nil {
		n++
	}
	return n
}
