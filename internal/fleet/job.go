package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/matrix"
	"repro/internal/patterns"
	"repro/internal/rng"
)

// Job is one GEMM workload item in a fleet trace: a kernel
// configuration, how many iterations of it to run, and when it arrives
// at the scheduler.
type Job struct {
	// ID identifies the job in reports; trace loading assigns
	// "job<index>" when empty.
	ID string `json:"id,omitempty"`
	// Device optionally pins the job to one device model
	// (a preset name from device.Names). Empty means the scheduler may
	// place it on any fleet device.
	Device string `json:"device,omitempty"`
	// DType is the datatype setup name ("FP32", "FP16", "FP16-T",
	// "INT8", "BF16-T").
	DType string `json:"dtype"`
	// Pattern is the §V input-pattern DSL describing the job's data.
	Pattern string `json:"pattern"`
	// Size is the square GEMM dimension.
	Size int `json:"size"`
	// ArrivalS is when the job enters the queue, in seconds from
	// simulation start.
	ArrivalS float64 `json:"arrival_s"`
	// Iterations is the GEMM loop length (how long the job holds its
	// device).
	Iterations int `json:"iterations"`

	// dt and key are filled by normalize.
	dt  matrix.DType
	key jobSpec
}

// jobSpec is the device-independent part of a prediction key: every
// job with the same spec on the same device model shares one operating
// point, which is what the batched prediction path coalesces on.
type jobSpec struct {
	dtype   matrix.DType
	pattern string // canonical DSL form
	size    int
}

// Trace is an ordered GEMM job stream. The zero value is empty; build
// one from JSON with ReadTrace or synthetically with Synthetic.
type Trace struct {
	Jobs []Job `json:"jobs"`
}

// normalizeJob validates one job in place: dtype parsed, pattern
// canonicalized, bounds checked, prediction key filled. Both trace
// loading and live HTTP admission funnel through it, so a job the
// controller accepted is exactly a job a replayed trace accepts.
func normalizeJob(j *Job) error {
	dt, ok := matrix.ParseDType(j.DType)
	if !ok {
		return fmt.Errorf("fleet: job %s: unknown dtype %q", j.ID, j.DType)
	}
	j.dt = dt
	canon, err := patterns.Canonicalize(j.Pattern)
	if err != nil {
		return fmt.Errorf("fleet: job %s: %w", j.ID, err)
	}
	j.Pattern = canon
	if j.Size < 8 {
		return fmt.Errorf("fleet: job %s: size %d below minimum 8", j.ID, j.Size)
	}
	if j.Iterations <= 0 {
		return fmt.Errorf("fleet: job %s: iterations must be positive", j.ID)
	}
	if j.ArrivalS < 0 || math.IsNaN(j.ArrivalS) {
		return fmt.Errorf("fleet: job %s: bad arrival time %v", j.ID, j.ArrivalS)
	}
	j.key = jobSpec{dtype: dt, pattern: canon, size: j.Size}
	return nil
}

// normalize validates every job, canonicalizes patterns, fills default
// IDs and sorts by (arrival, ID) so scheduling order is deterministic
// regardless of the order jobs were listed in.
func (t *Trace) normalize() error {
	for i := range t.Jobs {
		j := &t.Jobs[i]
		if j.ID == "" {
			j.ID = fmt.Sprintf("job%d", i)
		}
		if err := normalizeJob(j); err != nil {
			return err
		}
	}
	sort.SliceStable(t.Jobs, func(a, b int) bool {
		if t.Jobs[a].ArrivalS != t.Jobs[b].ArrivalS {
			return t.Jobs[a].ArrivalS < t.Jobs[b].ArrivalS
		}
		return t.Jobs[a].ID < t.Jobs[b].ID
	})
	return nil
}

// ReadTrace decodes a JSON trace ({"jobs": [...]}) and validates it.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("fleet: trace: %w", err)
	}
	if len(t.Jobs) == 0 {
		return nil, fmt.Errorf("fleet: trace has no jobs")
	}
	if err := t.normalize(); err != nil {
		return nil, err
	}
	return &t, nil
}

// WriteTrace encodes the trace as indented JSON ({"jobs": [...]}), the
// exact shape ReadTrace accepts — the recorder half of the trace
// replay path. A synthetic run dumped with WriteTrace (cmd/fleetsim
// -dump-trace) replays byte-identically: normalization is idempotent,
// so ReadTrace(WriteTrace(t)) reproduces t exactly.
func (t *Trace) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("fleet: write trace: %w", err)
	}
	return nil
}

// SyntheticConfig parameterizes a generated workload. Zero-valued
// fields take the defaults noted on each.
type SyntheticConfig struct {
	// Jobs is the number of jobs to generate (default 256).
	Jobs int
	// RatePerS is the mean arrival rate; inter-arrival gaps are
	// exponential, so the stream is a seeded Poisson process
	// (default 200 jobs/s).
	RatePerS float64
	// Seed drives every random choice; equal seeds generate equal
	// traces.
	Seed uint64
	// DTypes is the datatype mix (default FP16, FP16-T, INT8).
	DTypes []string
	// Patterns is the input-pattern mix (default: the paper's main
	// axes — dense Gaussian, constant, sparse, sorted, zeroed-LSB).
	Patterns []string
	// Sizes is the GEMM dimension mix (default 64, 128, 256).
	Sizes []int
	// MinIterations/MaxIterations bound the per-job loop length drawn
	// log-uniformly (defaults 2000 and 20000, roughly the paper's
	// 10k/20k measurement loops).
	MinIterations, MaxIterations int
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Jobs <= 0 {
		c.Jobs = 256
	}
	if c.RatePerS <= 0 {
		c.RatePerS = 200
	}
	if len(c.DTypes) == 0 {
		c.DTypes = []string{"FP16", "FP16-T", "INT8"}
	}
	if len(c.Patterns) == 0 {
		c.Patterns = []string{
			"gaussian(default)",
			"gaussian(mean=500, std=1)",
			"constant(7)",
			"gaussian(default) | sparsify(50%)",
			"gaussian(default) | sort(rows, 100%)",
			"gaussian(default) | zerolsb(8)",
		}
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{64, 128, 256}
	}
	if c.MinIterations <= 0 {
		c.MinIterations = 2000
	}
	if c.MaxIterations < c.MinIterations {
		c.MaxIterations = 10 * c.MinIterations
	}
	return c
}

// Synthetic generates a deterministic workload: Poisson arrivals over
// a uniform mix of the configured dtypes, patterns and sizes, with
// log-uniform iteration counts. Equal configs produce equal traces.
func Synthetic(cfg SyntheticConfig) (*Trace, error) {
	cfg = cfg.withDefaults()
	src := rng.Derive(cfg.Seed, "fleet/synthetic")
	t := &Trace{Jobs: make([]Job, cfg.Jobs)}
	clock := 0.0
	logMin := math.Log(float64(cfg.MinIterations))
	logMax := math.Log(float64(cfg.MaxIterations))
	for i := range t.Jobs {
		// Exponential inter-arrival gap; 1-u keeps the argument of Log
		// in (0, 1].
		clock += -math.Log(1-src.Float64()) / cfg.RatePerS
		iters := int(math.Exp(logMin + (logMax-logMin)*src.Float64()))
		t.Jobs[i] = Job{
			ID:         fmt.Sprintf("job%04d", i),
			DType:      cfg.DTypes[src.Intn(len(cfg.DTypes))],
			Pattern:    cfg.Patterns[src.Intn(len(cfg.Patterns))],
			Size:       cfg.Sizes[src.Intn(len(cfg.Sizes))],
			ArrivalS:   clock,
			Iterations: iters,
		}
	}
	if err := t.normalize(); err != nil {
		return nil, err
	}
	return t, nil
}
