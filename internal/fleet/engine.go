package fleet

// This file is the event-driven simulation core. Engine owns the state
// the old monolithic tick loop kept in locals: a sorted pending-arrival
// queue, per-instance run state, and the telemetry accumulators. One
// Tick advances simulated time by exactly one integration step and
// surfaces what happened through job lifecycle events, so the same
// engine drives both the offline replay (Run submits a whole trace up
// front and ticks to drain) and the live controller (Controller submits
// jobs as they arrive over HTTP and ticks only while there is work).
//
// Determinism is the load-bearing property: the tick sequence, the
// float operation order inside it, and every tie-break are exactly the
// pre-refactor loop's, so equal submissions produce byte-identical
// reports whether they arrive as a trace or one POST at a time.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/sched"
)

// EventKind classifies a job lifecycle event.
type EventKind int

// Job lifecycle event kinds, in the order a job passes through them.
const (
	// EventArrival fires when a pending job reaches its arrival time
	// and is handed to the placement policy.
	EventArrival EventKind = iota
	// EventStart fires when a placed job begins running on its device.
	EventStart
	// EventComplete fires when a job finishes its last iteration.
	EventComplete
	// EventFail fires when a job is dropped: bad placement, no eligible
	// device, or unfinished at the simulation horizon.
	EventFail
)

// String names the kind for logs and status endpoints.
func (k EventKind) String() string {
	switch k {
	case EventArrival:
		return "arrival"
	case EventStart:
		return "start"
	case EventComplete:
		return "complete"
	case EventFail:
		return "fail"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one job lifecycle transition, stamped with simulated time.
type Event struct {
	Kind EventKind
	// TimeS is the simulated instant of the transition (for
	// EventComplete, the job's finish time).
	TimeS float64
	// JobID identifies the job.
	JobID string
	// Device is the instance id the event happened on; empty for
	// arrivals and fleet-level failures.
	Device string
	// Err carries the failure reason for EventFail.
	Err string
}

// State is the engine's drive condition after a Tick.
type State int

const (
	// Running means the tick advanced simulated time; keep ticking.
	Running State = iota
	// Drained means no job is running or pending: simulated time did
	// not advance, and ticking is pointless until the next Submit.
	Drained
	// Aborted means the simulation horizon passed with jobs unfinished;
	// the engine is terminal and further Submits are rejected.
	Aborted
)

// String names the state for logs and status endpoints.
func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Drained:
		return "drained"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Engine is the deterministic event-driven simulation core: submit
// normalized jobs, tick until drained, reduce to a Report. The zero
// value is not usable; construct with NewEngine. An Engine is not safe
// for concurrent use — the live controller serializes access.
type Engine struct {
	cfg      Config
	insts    []*instance
	models   []string
	ops      map[OpKey]OperatingPoint
	idleSumW float64
	// windowS is positive when cfg.Policy is sched.HorizonAware and
	// asked for a projection window; only then are per-instance power
	// timelines built at each admission.
	windowS float64

	sink func(Event)

	// pending holds submitted jobs not yet admitted, sorted by
	// (ArrivalS, ID) with submission order breaking ties — the same
	// total order Trace.normalize establishes, so a trace submitted in
	// order replays exactly.
	pending   []*Job
	submitted int

	// candBuf/opBuf are admission scratch, reused across jobs.
	candBuf  []sched.Candidate
	opBuf    []OperatingPoint
	powerBuf []float64

	nowS       float64
	peakFleetW float64
	fleetWSum  float64 // ∫ fleet power dt
	events     []ThrottleEvent
	samples    []Sample
	nextSample float64

	completed []JobResult
	failed    []JobResult

	state State
}

// NewEngine validates the config and builds an empty engine: no jobs,
// simulated time zero. Callers must install operating points (the
// offline path resolves a whole trace up front, the live path resolves
// per submission) before the first Tick admits a job.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("fleet: no devices")
	}
	for _, d := range cfg.Devices {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
	}
	insts, models, err := buildInstances(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		insts:    insts,
		models:   models,
		ops:      make(map[OpKey]OperatingPoint),
		powerBuf: make([]float64, len(insts)),
	}
	for _, in := range insts {
		e.idleSumW += in.dev.IdleWatts
	}
	if ha, ok := cfg.Policy.(sched.HorizonAware); ok && ha.HorizonWindowS() > 0 {
		e.windowS = ha.HorizonWindowS()
	}
	return e, nil
}

// SetSink installs the job lifecycle event callback. Events are emitted
// synchronously from Tick (and from Submit on rejection-free paths
// never — submission itself is not an event; admission is). The sink
// must not call back into the engine.
func (e *Engine) SetSink(fn func(Event)) { e.sink = fn }

func (e *Engine) emit(ev Event) {
	if e.sink != nil {
		e.sink(ev)
	}
}

// NowS is the engine's simulated time: the instant the next tick will
// integrate from. Live submissions stamp arrivals with it.
func (e *Engine) NowS() float64 { return e.nowS }

// State reports the drive condition after the most recent Tick.
func (e *Engine) State() State { return e.state }

// Models lists the distinct device models in the fleet, in first-seen
// fleet order — the candidate set for an unpinned job's key expansion.
func (e *Engine) Models() []string { return e.models }

// Submitted is the number of jobs ever accepted by Submit.
func (e *Engine) Submitted() int { return e.submitted }

// AddOperatingPoints merges resolved operating points into the engine's
// table. Re-adding a key overwrites it; oracles are memoized, so equal
// keys carry equal points and the overwrite is a no-op.
func (e *Engine) AddOperatingPoints(ops map[OpKey]OperatingPoint) {
	for k, v := range ops {
		e.ops[k] = v
	}
}

// Submit queues one normalized job for admission at its arrival time.
// The job must come from a normalized Trace (or jobNormalize): dtype
// parsed, pattern canonical. Arrivals before the engine's current
// simulated time are rejected — admitting one late would break the
// equal-trace-equal-report guarantee the offline replay depends on.
func (e *Engine) Submit(j *Job) error {
	if e.state == Aborted {
		return fmt.Errorf("fleet: engine aborted at horizon %gs", e.cfg.HorizonS)
	}
	if j.key.pattern == "" {
		return fmt.Errorf("fleet: job %s submitted without normalization", j.ID)
	}
	if j.ArrivalS < e.nowS {
		return fmt.Errorf("fleet: job %s arrival %gs is in the simulated past (now %gs)", j.ID, j.ArrivalS, e.nowS)
	}
	// Insert after every pending job with the same (arrival, ID) so
	// submission order breaks ties, exactly like the stable trace sort.
	idx := sort.Search(len(e.pending), func(i int) bool {
		p := e.pending[i]
		if p.ArrivalS != j.ArrivalS {
			return p.ArrivalS > j.ArrivalS
		}
		return p.ID > j.ID
	})
	e.pending = append(e.pending, nil)
	copy(e.pending[idx+1:], e.pending[idx:])
	e.pending[idx] = j
	e.submitted++
	if e.state == Drained {
		e.state = Running
	}
	return nil
}

// Tick advances the simulation by one integration step: admit arrivals
// due now, start queued work on idle instances, apply the aggregate
// power-cap governor, and integrate every device's power, temperature
// and job progress over cfg.TickS. It returns Drained — without
// advancing time — when no work exists, and Aborted when the horizon
// passes with jobs unfinished.
func (e *Engine) Tick(ctx context.Context) (State, error) {
	if e.state == Aborted {
		return Aborted, nil
	}
	if err := ctx.Err(); err != nil {
		return e.state, err
	}
	dt := e.cfg.TickS

	// Admit arrivals: each is handed to the configured placement
	// policy with a snapshot of every eligible instance's state
	// (the default, sched.EarliestCompletion, picks the instance
	// that would finish the job first; ties break on fleet order).
	for len(e.pending) > 0 && e.pending[0].ArrivalS <= e.nowS {
		j := e.pending[0]
		e.pending = e.pending[1:]
		e.emit(Event{Kind: EventArrival, TimeS: e.nowS, JobID: j.ID})
		e.admit(j)
	}

	// Start queued work on idle instances.
	busyAny := false
	for _, in := range e.insts {
		if in.cur == nil && len(in.queue) > 0 {
			in.cur = in.queue[0]
			in.queue = in.queue[1:]
			in.doneIts = 0
			e.emit(Event{Kind: EventStart, TimeS: e.nowS, JobID: in.cur.job.ID, Device: in.id})
		}
		if in.cur != nil {
			busyAny = true
		}
	}
	if !busyAny && len(e.pending) == 0 {
		e.state = Drained
		return Drained, nil
	}
	if e.nowS >= e.cfg.HorizonS {
		e.abortUnfinished()
		e.state = Aborted
		return Aborted, nil
	}

	// Aggregate power-cap governor: demand is each instance's
	// steady operating-point power; when the sum exceeds the cap,
	// dynamic power (and with it, clocks) scales down uniformly
	// across busy instances. Idle floors cannot be capped away.
	var idleSum, dynSum float64
	for _, in := range e.insts {
		idleSum += in.dev.IdleWatts
		if in.cur != nil {
			dynSum += in.cur.op.PowerW - in.dev.IdleWatts
		}
	}
	capScale := 1.0
	if e.cfg.PowerCapW > 0 && dynSum > 0 && idleSum+dynSum > e.cfg.PowerCapW {
		capScale = (e.cfg.PowerCapW - idleSum) / dynSum
		if capScale < 0 {
			capScale = 0
		}
	}

	// Per-instance step: thermal governor, temperature
	// integration, energy accounting and job progress.
	var fleetW float64
	for i, in := range e.insts {
		p := e.stepInstance(in, capScale, dt)
		e.powerBuf[i] = p
		fleetW += p
	}
	e.fleetWSum += fleetW * dt
	if fleetW > e.peakFleetW {
		e.peakFleetW = fleetW
	}
	if e.cfg.RecordSamples && e.nowS >= e.nextSample {
		e.recordSample(fleetW, e.powerBuf)
		e.nextSample += e.cfg.SamplePeriodS
	}
	e.nowS += dt
	e.state = Running
	return Running, nil
}

// admit builds the scheduler-visible view of every eligible instance
// and delegates the placement to the configured policy.
func (e *Engine) admit(j *Job) {
	cands := e.candBuf[:0]
	ops := e.opBuf[:0]
	for i, in := range e.insts {
		if j.Device != "" && in.dev.Name != j.Device {
			continue
		}
		op, ok := e.ops[OpKey{Device: in.dev.Name, DType: j.dt.String(), Pattern: j.Pattern, Size: j.Size}]
		if !ok {
			continue
		}
		cands = append(cands, sched.Candidate{
			Index:           i,
			Model:           in.dev.Name,
			BacklogS:        in.backlogS,
			Queued:          in.queued(),
			QueueDynEnergyJ: in.dynBacklogJ(),
			TempC:           in.tempC,
			AmbientC:        in.ambient,
			IdleW:           in.dev.IdleWatts,
			RThermalCPerW:   in.dev.Thermal.RThermalCPerW,
			ThrottleTempC:   in.dev.Thermal.ThrottleTempC,
			IterTimeS:       op.IterTimeS,
			PowerW:          op.PowerW,
			PredictedW:      op.PredictedW,
			Throttled:       op.Throttled,
		})
		ops = append(ops, op)
	}
	e.candBuf, e.opBuf = cands, ops
	if len(cands) == 0 {
		// Unreachable after resolveOperatingPoints validated pinning,
		// but a dropped job must not vanish silently.
		e.fail(JobResult{ID: j.ID, Error: "no eligible device"})
		return
	}
	pick := e.cfg.Policy.Place(sched.Job{
		ID:         j.ID,
		DType:      j.dt.String(),
		Pattern:    j.Pattern,
		Size:       j.Size,
		ArrivalS:   j.ArrivalS,
		Iterations: j.Iterations,
	}, cands, sched.Fleet{
		PowerCapW: e.cfg.PowerCapW,
		IdleSumW:  e.idleSumW,
		Instances: len(e.insts),
		NowS:      e.nowS,
		TickS:     e.cfg.TickS,
		Timelines: e.timelines(),
	})
	if pick < 0 || pick >= len(cands) {
		e.fail(JobResult{
			ID:    j.ID,
			Error: fmt.Sprintf("policy %s returned invalid placement %d for %d candidates", e.cfg.Policy.Name(), pick, len(cands)),
		})
		return
	}
	in := e.insts[cands[pick].Index]
	op := ops[pick]
	rj := &runJob{job: j, op: op, serviceS: float64(j.Iterations) * op.IterTimeS}
	in.queue = append(in.queue, rj)
	in.backlogS += rj.serviceS
}

// timelines builds the per-instance committed dynamic-power profiles a
// HorizonAware policy projects over: the running job's full-clock
// remainder followed by each queued job's service time, each at its
// operating point's dynamic draw. Horizon-oblivious runs get nil and
// pay nothing.
func (e *Engine) timelines() [][]sched.PowerSegment {
	if e.windowS <= 0 {
		return nil
	}
	tls := make([][]sched.PowerSegment, len(e.insts))
	for i, in := range e.insts {
		var tl []sched.PowerSegment
		if in.cur != nil {
			remaining := (float64(in.cur.job.Iterations) - in.doneIts) * in.cur.op.IterTimeS
			if remaining > 0 {
				tl = append(tl, sched.PowerSegment{DurationS: remaining, DynPowerW: in.cur.op.PowerW - in.dev.IdleWatts})
			}
		}
		for _, rj := range in.queue {
			tl = append(tl, sched.PowerSegment{DurationS: rj.serviceS, DynPowerW: rj.op.PowerW - in.dev.IdleWatts})
		}
		tls[i] = tl
	}
	return tls
}

// fail records a dropped job and emits its failure event.
func (e *Engine) fail(jr JobResult) {
	e.failed = append(e.failed, jr)
	e.emit(Event{Kind: EventFail, TimeS: e.nowS, JobID: jr.ID, Device: jr.Device, Err: jr.Error})
}

// stepInstance advances one device by dt under the global cap scale
// and returns its power draw this tick.
func (e *Engine) stepInstance(in *instance, capScale, dt float64) float64 {
	idle := in.dev.IdleWatts
	power := idle
	scale := 1.0
	capped, thermal := false, false

	if in.cur != nil {
		dyn := in.cur.op.PowerW - idle
		scale = capScale
		capped = capScale < 1-1e-12
		power = idle + scale*dyn

		// Thermal governor: once the die reaches the throttle point,
		// clocks scale so steady power holds the temperature there.
		// The limit depends on the (possibly overridden) ambient, so a
		// hot aisle throttles configurations the preset's 30 °C
		// calibration point allowed.
		if in.tempC >= in.dev.Thermal.ThrottleTempC-1e-9 {
			pMax := (in.dev.Thermal.ThrottleTempC - in.ambient) / in.dev.Thermal.RThermalCPerW
			if power > pMax {
				thermal = true
				ts := (pMax - idle) / (power - idle)
				if ts < 0 {
					ts = 0
				}
				scale *= ts
				power = idle + scale*dyn
			}
		}
	}

	// First-order RC temperature integration toward the steady state
	// implied by this tick's power.
	steady := in.ambient + power*in.dev.Thermal.RThermalCPerW
	in.tempC += dt * (steady - in.tempC) / e.cfg.ThermalTauS
	if in.tempC > in.maxTempC {
		in.maxTempC = in.tempC
	}

	in.energyJ += power * dt
	if power > in.peakPowerW {
		in.peakPowerW = power
	}

	if in.cur != nil {
		in.busyS += dt
		if capped {
			in.capS += dt
		}
		if thermal {
			in.thermalS += dt
		}
		e.updateEvent(in, &in.capEventStart, capped, "cap")
		e.updateEvent(in, &in.thermalEventStart, thermal, "thermal")

		progressed := dt * scale / in.cur.op.IterTimeS
		in.doneIts += progressed
		in.backlogS -= dt * scale
		if in.doneIts >= float64(in.cur.job.Iterations) {
			j := in.cur.job
			e.completed = append(e.completed, JobResult{
				ID:         j.ID,
				Device:     in.id,
				DType:      j.dt.String(),
				Pattern:    j.Pattern,
				Size:       j.Size,
				ArrivalS:   j.ArrivalS,
				FinishS:    e.nowS + dt,
				LatencyS:   e.nowS + dt - j.ArrivalS,
				ServiceS:   in.cur.serviceS,
				PowerW:     in.cur.op.PowerW,
				PredictedW: in.cur.op.PredictedW,
			})
			in.jobsRun++
			in.cur = nil
			in.doneIts = 0
			e.emit(Event{Kind: EventComplete, TimeS: e.nowS + dt, JobID: j.ID, Device: in.id})
		}
	} else {
		e.updateEvent(in, &in.capEventStart, false, "cap")
		e.updateEvent(in, &in.thermalEventStart, false, "thermal")
	}
	return power
}

// updateEvent opens or closes one (instance, reason) throttle event as
// the condition toggles, coalescing contiguous throttled ticks.
func (e *Engine) updateEvent(in *instance, start *float64, active bool, reason string) {
	switch {
	case active && *start < 0:
		*start = e.nowS
	case !active && *start >= 0:
		e.events = append(e.events, ThrottleEvent{Device: in.id, Reason: reason, StartS: *start, EndS: e.nowS})
		*start = -1
	}
}

// closedEvents returns the run's throttle events with any still-open
// intervals closed at the current simulated time — without mutating
// engine state, so a report taken at a transient drain does not
// truncate an event that a later submission would have extended.
func (e *Engine) closedEvents() []ThrottleEvent {
	events := e.events
	for _, in := range e.insts {
		if in.capEventStart >= 0 {
			events = append(events[:len(events):len(events)],
				ThrottleEvent{Device: in.id, Reason: "cap", StartS: in.capEventStart, EndS: e.nowS})
		}
		if in.thermalEventStart >= 0 {
			events = append(events[:len(events):len(events)],
				ThrottleEvent{Device: in.id, Reason: "thermal", StartS: in.thermalEventStart, EndS: e.nowS})
		}
	}
	return events
}

// abortUnfinished records every job that had not completed when the
// horizon hit: still-running, queued and not-yet-admitted jobs alike.
func (e *Engine) abortUnfinished() {
	for _, in := range e.insts {
		if in.cur != nil {
			e.fail(JobResult{ID: in.cur.job.ID, Device: in.id, Error: "unfinished at horizon"})
			in.cur = nil
		}
		for _, rj := range in.queue {
			e.fail(JobResult{ID: rj.job.ID, Device: in.id, Error: "queued at horizon"})
		}
		in.queue = nil
	}
	for _, j := range e.pending {
		e.fail(JobResult{ID: j.ID, Error: "not admitted before horizon"})
	}
	e.pending = nil
}

// recordSample appends one telemetry sample.
func (e *Engine) recordSample(fleetW float64, powers []float64) {
	sm := Sample{
		TimeS:       e.nowS,
		FleetW:      fleetW,
		DeviceW:     make([]float64, len(e.insts)),
		DeviceTempC: make([]float64, len(e.insts)),
	}
	copy(sm.DeviceW, powers)
	for i, in := range e.insts {
		sm.DeviceTempC[i] = in.tempC
	}
	e.samples = append(e.samples, sm)
}
