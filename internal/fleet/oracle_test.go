package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/serve"
)

// oracleServeConfig is a small serving config for oracle tests.
func oracleServeConfig() serve.Config {
	return serve.Config{
		CacheSize:     64,
		MaxSize:       192,
		SampleOutputs: 32,
		Training: experiments.TrainingConfig{
			Sizes: []int{24, 32, 48},
			Patterns: []string{
				"gaussian(default)",
				"gaussian(mean=500, std=1)",
				"constant(7)",
				"constant(random)",
				"set(n=4, mean=0, std=210)",
				"gaussian(default) | sparsify(50%)",
				"gaussian(default) | sort(rows, 100%)",
			},
			SampleOutputs: 32,
			Seed:          1,
		},
	}
}

// startRouter spins n in-process shards behind a powerrouter-shaped
// HTTP front and returns its base URL.
func startRouter(t *testing.T, shards int) string {
	t.Helper()
	cfg := cluster.Config{MaxSize: 192}
	for i := 0; i < shards; i++ {
		core := serve.NewCore(oracleServeConfig())
		t.Cleanup(core.Close)
		srv := httptest.NewServer(serve.Handler(core))
		t.Cleanup(srv.Close)
		cfg.Shards = append(cfg.Shards, cluster.Shard{
			Name:    srv.URL,
			Backend: cluster.NewHTTPBackend(srv.URL, nil),
		})
	}
	client, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	router := httptest.NewServer(serve.Handler(client))
	t.Cleanup(router.Close)
	return router.URL
}

func TestHTTPOraclePerItemError(t *testing.T) {
	// A batch item the server rejects (bad key) must fail the Resolve
	// with the offending key named — a fleet cannot schedule a job it
	// has no operating point for.
	core := serve.NewCore(oracleServeConfig())
	t.Cleanup(core.Close)
	srv := httptest.NewServer(serve.Handler(core))
	t.Cleanup(srv.Close)

	o := NewHTTPOracle(srv.URL)
	keys := []OpKey{
		{Device: "A100-PCIe-40GB", DType: "FP16", Pattern: "constant(1)", Size: 32},
		{Device: "A100-PCIe-40GB", DType: "FP16", Pattern: "zorp(", Size: 32},
	}
	_, err := o.Resolve(context.Background(), keys)
	if err == nil {
		t.Fatal("resolve with an invalid key must fail")
	}
	if !strings.Contains(err.Error(), "zorp") {
		t.Errorf("error %q does not name the offending key", err)
	}

	// The valid-only subset still resolves.
	ops, err := o.Resolve(context.Background(), keys[:1])
	if err != nil {
		t.Fatal(err)
	}
	if ops[0].PowerW <= 0 {
		t.Errorf("operating point power = %v, want > 0", ops[0].PowerW)
	}
}

func TestHTTPOracleServerDown(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // connections now refused

	o := NewHTTPOracle(srv.URL)
	_, err := o.Resolve(context.Background(), []OpKey{
		{Device: "A100-PCIe-40GB", DType: "FP16", Pattern: "constant(1)", Size: 32},
	})
	if err == nil {
		t.Fatal("resolve against a dead server must fail")
	}
}

func TestHTTPOracleMalformedResponse(t *testing.T) {
	cases := map[string]http.HandlerFunc{
		"garbage-200": func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "<html>not json</html>")
		},
		"short-items": func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"items": [], "distinct": 0, "coalesced": 0}`)
		},
		"error-status": func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		},
	}
	for name, handler := range cases {
		t.Run(name, func(t *testing.T) {
			srv := httptest.NewServer(handler)
			t.Cleanup(srv.Close)
			o := NewHTTPOracle(srv.URL)
			_, err := o.Resolve(context.Background(), []OpKey{
				{Device: "A100-PCIe-40GB", DType: "FP16", Pattern: "constant(1)", Size: 32},
			})
			if err == nil {
				t.Fatal("malformed response must fail the resolve")
			}
		})
	}
}

func TestHTTPOracleContextCancellation(t *testing.T) {
	// A server that never answers: cancelling the context must abort
	// the resolve promptly instead of hanging a fleet tick.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(srv.Close)

	o := NewHTTPOracle(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := o.Resolve(ctx, []OpKey{
		{Device: "A100-PCIe-40GB", DType: "FP16", Pattern: "constant(1)", Size: 32},
	})
	if err == nil {
		t.Fatal("cancelled resolve must fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("resolve took %v to notice cancellation", elapsed)
	}
}

func TestHTTPOracleAgainstRouterEquivalence(t *testing.T) {
	// The fleet oracle pointed at a single node and at a 2-shard
	// router must produce identical operating points — HTTPOracle is
	// unchanged, the router is just another base URL.
	single := serve.NewCore(oracleServeConfig())
	t.Cleanup(single.Close)
	singleSrv := httptest.NewServer(serve.Handler(single))
	t.Cleanup(singleSrv.Close)

	keys := []OpKey{
		{Device: "A100-PCIe-40GB", DType: "FP16", Pattern: "constant(1)", Size: 32},
		{Device: "A100-PCIe-40GB", DType: "FP16", Pattern: "constant(2)", Size: 48},
		{Device: "A100-PCIe-40GB", DType: "FP16", Pattern: "constant(1)", Size: 32}, // duplicate
		{Device: "A100-PCIe-40GB", DType: "FP16", Pattern: "gaussian(default)", Size: 24},
	}
	want, err := NewHTTPOracle(singleSrv.URL).Resolve(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}

	routerURL := startRouter(t, 2)
	got, err := NewHTTPOracle(routerURL).Resolve(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("key %d: router operating point %+v != single-node %+v", i, got[i], want[i])
		}
	}
}
