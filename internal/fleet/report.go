package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// JobResult records one job's fate. Completed jobs carry timing and
// power; failed jobs carry an Error.
type JobResult struct {
	ID      string `json:"id"`
	Device  string `json:"device,omitempty"` // instance id, e.g. "A100-PCIe-40GB#1"
	DType   string `json:"dtype,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	Size    int    `json:"size,omitempty"`

	ArrivalS float64 `json:"arrival_s,omitempty"`
	FinishS  float64 `json:"finish_s,omitempty"`
	// LatencyS is arrival-to-completion: queueing plus (possibly
	// throttle-stretched) service.
	LatencyS float64 `json:"latency_s,omitempty"`
	// ServiceS is the job's full-clock service time; LatencyS above it
	// is queueing delay and throttle stretch.
	ServiceS float64 `json:"service_s,omitempty"`
	// PowerW is the device power while the job ran (before fleet-level
	// throttling); PredictedW is the serving model's estimate of it.
	PowerW     float64 `json:"power_w,omitempty"`
	PredictedW float64 `json:"predicted_w,omitempty"`

	Error string `json:"error,omitempty"`
}

// ThrottleEvent is one contiguous interval during which a device ran
// below full clocks, with the limiter that caused it.
type ThrottleEvent struct {
	Device string `json:"device"`
	// Reason is "cap" (aggregate fleet power budget) or "thermal"
	// (die at the throttle temperature).
	Reason string  `json:"reason"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
}

// DeviceReport aggregates one fleet instance over the run.
type DeviceReport struct {
	Device            string  `json:"device"` // instance id
	Model             string  `json:"model"`  // preset name
	JobsRun           int     `json:"jobs_run"`
	UtilizationFrac   float64 `json:"utilization_frac"`
	EnergyJ           float64 `json:"energy_j"`
	AvgPowerW         float64 `json:"avg_power_w"`
	PeakPowerW        float64 `json:"peak_power_w"`
	MaxTempC          float64 `json:"max_temp_c"`
	CapThrottledS     float64 `json:"cap_throttled_s"`
	ThermalThrottledS float64 `json:"thermal_throttled_s"`
}

// Sample is one telemetry timeline point (Config.RecordSamples).
type Sample struct {
	TimeS  float64 `json:"time_s"`
	FleetW float64 `json:"fleet_w"`
	// DeviceW and DeviceTempC are indexed like Report.Devices.
	DeviceW     []float64 `json:"device_w"`
	DeviceTempC []float64 `json:"device_temp_c"`
}

// Report is the full outcome of one fleet simulation. It is plain
// data: marshal it as JSON, or render the timeline with WriteCSV.
type Report struct {
	// PowerCapW and AmbientC echo the run's control inputs.
	PowerCapW float64 `json:"power_cap_w"`
	AmbientC  float64 `json:"ambient_c,omitempty"`

	Jobs       int `json:"jobs"`
	Completed  int `json:"completed"`
	Unfinished int `json:"unfinished"`

	// DurationS is the simulated makespan (last completion, or the
	// horizon on an aborted run).
	DurationS float64 `json:"duration_s"`

	LatencyMeanS float64 `json:"latency_mean_s"`
	LatencyP50S  float64 `json:"latency_p50_s"`
	LatencyP90S  float64 `json:"latency_p90_s"`
	LatencyP99S  float64 `json:"latency_p99_s"`
	LatencyMaxS  float64 `json:"latency_max_s"`

	FleetEnergyJ float64 `json:"fleet_energy_j"`
	AvgFleetW    float64 `json:"avg_fleet_w"`
	PeakFleetW   float64 `json:"peak_fleet_w"`

	Devices        []DeviceReport  `json:"devices"`
	ThrottleEvents []ThrottleEvent `json:"throttle_events"`
	// Oracle shows the batched-prediction economics: Lookups is every
	// (job × candidate device) question asked, Distinct the
	// simulations actually paid for.
	Oracle OracleStats `json:"oracle"`

	// JobResults lists completions (sorted by finish time) then
	// failures.
	JobResults []JobResult `json:"job_results,omitempty"`
	Samples    []Sample    `json:"samples,omitempty"`
}

// Report reduces the simulation state so far. It is safe to call at
// any drain point — open throttle events are closed in the returned
// copy without mutating engine state — but the canonical report is the
// one taken when the engine has drained with no further submissions
// coming, which is exactly what a replayed trace reproduces.
func (e *Engine) Report() *Report {
	r := &Report{
		PowerCapW:      e.cfg.PowerCapW,
		AmbientC:       e.cfg.AmbientC,
		Jobs:           e.submitted,
		Completed:      len(e.completed),
		Unfinished:     len(e.failed),
		DurationS:      e.nowS,
		FleetEnergyJ:   e.fleetWSum,
		PeakFleetW:     e.peakFleetW,
		ThrottleEvents: e.closedEvents(),
		Samples:        e.samples,
	}
	if e.nowS > 0 {
		r.AvgFleetW = e.fleetWSum / e.nowS
	}
	if so, ok := e.cfg.Oracle.(statsOracle); ok {
		r.Oracle = so.Stats()
	}
	if r.ThrottleEvents == nil {
		r.ThrottleEvents = []ThrottleEvent{}
	}

	sort.SliceStable(e.completed, func(a, b int) bool {
		if e.completed[a].FinishS != e.completed[b].FinishS {
			return e.completed[a].FinishS < e.completed[b].FinishS
		}
		return e.completed[a].ID < e.completed[b].ID
	})
	lat := make([]float64, len(e.completed))
	var latSum float64
	for i, jr := range e.completed {
		lat[i] = jr.LatencyS
		latSum += jr.LatencyS
	}
	sort.Float64s(lat)
	if len(lat) > 0 {
		r.LatencyMeanS = latSum / float64(len(lat))
		r.LatencyP50S = percentile(lat, 0.50)
		r.LatencyP90S = percentile(lat, 0.90)
		r.LatencyP99S = percentile(lat, 0.99)
		r.LatencyMaxS = lat[len(lat)-1]
	}

	for _, in := range e.insts {
		dr := DeviceReport{
			Device:            in.id,
			Model:             in.dev.Name,
			JobsRun:           in.jobsRun,
			EnergyJ:           in.energyJ,
			PeakPowerW:        in.peakPowerW,
			MaxTempC:          in.maxTempC,
			CapThrottledS:     in.capS,
			ThermalThrottledS: in.thermalS,
		}
		if e.nowS > 0 {
			dr.UtilizationFrac = in.busyS / e.nowS
			dr.AvgPowerW = in.energyJ / e.nowS
		}
		r.Devices = append(r.Devices, dr)
	}

	r.JobResults = append(r.JobResults, e.completed...)
	r.JobResults = append(r.JobResults, e.failed...)
	return r
}

// percentile reads the p-quantile from an ascending slice by
// nearest-rank, matching examples/loadgen's reduction.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// WriteJSON writes the report as indented JSON. The encoding is
// deterministic: struct fields in declaration order, no maps.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes the telemetry timeline as CSV: one row per sample
// with fleet watts and per-device power and temperature columns. The
// report must have been produced with Config.RecordSamples.
func (r *Report) WriteCSV(w io.Writer) error {
	if len(r.Samples) == 0 {
		return fmt.Errorf("fleet: report has no samples (set Config.RecordSamples)")
	}
	header := "time_s,fleet_w"
	for _, d := range r.Devices {
		header += "," + d.Device + "_w," + d.Device + "_temp_c"
	}
	if _, err := io.WriteString(w, header+"\n"); err != nil {
		return err
	}
	for _, sm := range r.Samples {
		row := fmtF(sm.TimeS) + "," + fmtF(sm.FleetW)
		for i := range r.Devices {
			row += "," + fmtF(sm.DeviceW[i]) + "," + fmtF(sm.DeviceTempC[i])
		}
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
