package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/device"
	"repro/internal/matrix"
	"repro/internal/patterns"
	"repro/internal/serve"
)

// OpKey names one operating point: a device model running one job
// spec. It is the same identity the serving layer caches on, so every
// oracle implementation coalesces duplicate keys into one lookup.
type OpKey struct {
	// Device is a preset name (device.Names).
	Device string
	// DType is the datatype setup name in canonical spelling.
	DType string
	// Pattern is the canonical §V DSL form.
	Pattern string
	// Size is the square GEMM dimension.
	Size int
}

// OperatingPoint is the steady-state behaviour of one (device model,
// job spec) pair: everything the fleet simulator needs to integrate a
// job over time.
type OperatingPoint struct {
	// IterTimeS is the host-visible time of one GEMM iteration at full
	// clocks (fleet-level throttling stretches it).
	IterTimeS float64
	// PowerW is the sustained board power while the job runs,
	// including the device's own TDP/thermal steady-state governor.
	PowerW float64
	// PredictedW is the §V linear model's estimate of PowerW; for the
	// model oracle (no fitted predictor) it equals PowerW.
	PredictedW float64
	// BusyFrac is the kernel duty cycle over launch gaps.
	BusyFrac float64
	// Throttled reports that the device's own governor (TDP or
	// thermal steady state) already limits this configuration before
	// any fleet-level cap applies.
	Throttled bool
}

// Oracle resolves operating points for a set of keys. Resolve must
// answer keys[i] in out[i]; implementations are expected to coalesce
// duplicate keys and cache across calls, so that a fleet tick asking
// about thousands of queued jobs costs one simulation per distinct
// never-seen key.
type Oracle interface {
	Resolve(ctx context.Context, keys []OpKey) ([]OperatingPoint, error)
}

// OracleStats counts the work an oracle performed, for reports.
type OracleStats struct {
	// Lookups is the number of keys handed to Resolve, duplicates
	// included.
	Lookups int64 `json:"lookups"`
	// Distinct is the number of unique keys ever resolved — the
	// number of simulations actually paid for.
	Distinct int64 `json:"distinct"`
}

// statsOracle is implemented by the built-in oracles so reports can
// show the coalescing ratio.
type statsOracle interface {
	Stats() OracleStats
}

// ModelOracle answers from the simulation chain directly
// (serve.Simulate), memoizing every distinct key for the lifetime of
// the oracle. It is the offline path: bit-identical to what a serving
// instance computes for the same key, with no predictor fit.
type ModelOracle struct {
	// SampleOutputs bounds the sampled activity terms per simulation
	// (0 = the serving default, 128).
	SampleOutputs int

	mu      sync.Mutex
	memo    map[OpKey]OperatingPoint
	lookups int64
}

// NewModelOracle returns a ModelOracle with the serving layer's
// default simulation fidelity.
func NewModelOracle() *ModelOracle { return &ModelOracle{SampleOutputs: 128} }

// Resolve simulates each distinct key once and serves repeats from the
// memo. Distinct keys within one call are resolved in deterministic
// (sorted) order so floating-point results never depend on batch
// composition.
func (o *ModelOracle) Resolve(ctx context.Context, keys []OpKey) ([]OperatingPoint, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.memo == nil {
		o.memo = make(map[OpKey]OperatingPoint)
	}
	o.lookups += int64(len(keys))

	missing := make(map[OpKey]bool)
	for _, k := range keys {
		if _, ok := o.memo[k]; !ok {
			missing[k] = true
		}
	}
	order := make([]OpKey, 0, len(missing))
	for k := range missing {
		order = append(order, k)
	}
	sort.Slice(order, func(a, b int) bool { return order[a].less(order[b]) })
	for _, k := range order {
		op, err := simulateKey(k, o.SampleOutputs)
		if err != nil {
			return nil, err
		}
		o.memo[k] = op
	}

	out := make([]OperatingPoint, len(keys))
	for i, k := range keys {
		out[i] = o.memo[k]
	}
	return out, nil
}

// Stats reports lookup and distinct-key counts.
func (o *ModelOracle) Stats() OracleStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return OracleStats{Lookups: o.lookups, Distinct: int64(len(o.memo))}
}

func (k OpKey) less(other OpKey) bool {
	if k.Device != other.Device {
		return k.Device < other.Device
	}
	if k.DType != other.DType {
		return k.DType < other.DType
	}
	if k.Pattern != other.Pattern {
		return k.Pattern < other.Pattern
	}
	return k.Size < other.Size
}

// simulateKey runs the serving layer's measurement chain for one key.
func simulateKey(k OpKey, sampleOutputs int) (OperatingPoint, error) {
	dev, dt, pat, err := resolveKeyParts(k)
	if err != nil {
		return OperatingPoint{}, err
	}
	if sampleOutputs <= 0 {
		sampleOutputs = 128
	}
	_, res, err := serve.Simulate(dev, dt, pat, k.Size, sampleOutputs)
	if err != nil {
		return OperatingPoint{}, err
	}
	return OperatingPoint{
		IterTimeS:  res.IterTimeS,
		PowerW:     res.AvgPowerW,
		PredictedW: res.AvgPowerW,
		BusyFrac:   res.BusyFrac,
		Throttled:  res.Throttled,
	}, nil
}

// ServerOracle answers through an in-process serve.Server's batched
// prediction path: one PredictBatch call per Resolve, one simulation
// per distinct never-cached key (the server's LRU carries state across
// calls). PredictedW comes from the server's fitted §V model.
type ServerOracle struct {
	// Server is the serving instance to query.
	Server *serve.Server

	mu       sync.Mutex
	lookups  int64
	distinct map[OpKey]bool
}

// NewServerOracle wraps a serving instance.
func NewServerOracle(s *serve.Server) *ServerOracle {
	return &ServerOracle{Server: s, distinct: make(map[OpKey]bool)}
}

// Resolve maps the keys onto one PredictBatch call.
func (o *ServerOracle) Resolve(ctx context.Context, keys []OpKey) ([]OperatingPoint, error) {
	batch := serve.BatchRequest{Requests: make([]serve.PredictRequest, len(keys))}
	for i, k := range keys {
		batch.Requests[i] = k.predictRequest()
	}
	resp, err := o.Server.PredictBatch(ctx, batch)
	if err != nil {
		return nil, err
	}
	out, err := batchToOps(keys, resp)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	o.lookups += int64(len(keys))
	for _, k := range keys {
		o.distinct[k] = true
	}
	o.mu.Unlock()
	return out, nil
}

// Stats reports lookup and distinct-key counts.
func (o *ServerOracle) Stats() OracleStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return OracleStats{Lookups: o.lookups, Distinct: int64(len(o.distinct))}
}

// HTTPOracle answers through a remote powerserve instance's
// POST /predict/batch endpoint, so a fleet simulation can be driven
// against a shared serving deployment.
type HTTPOracle struct {
	// BaseURL is the server root, e.g. "http://localhost:8090".
	BaseURL string
	// Client is the HTTP client to use (nil = http.DefaultClient).
	Client *http.Client

	mu       sync.Mutex
	lookups  int64
	distinct map[OpKey]bool
}

// NewHTTPOracle points at a running powerserve instance.
func NewHTTPOracle(baseURL string) *HTTPOracle {
	return &HTTPOracle{BaseURL: baseURL, distinct: make(map[OpKey]bool)}
}

// Resolve posts the keys as one /predict/batch request.
func (o *HTTPOracle) Resolve(ctx context.Context, keys []OpKey) ([]OperatingPoint, error) {
	batch := serve.BatchRequest{Requests: make([]serve.PredictRequest, len(keys))}
	for i, k := range keys {
		batch.Requests[i] = k.predictRequest()
	}
	body, err := json.Marshal(batch)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, o.BaseURL+"/predict/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := o.Client
	if client == nil {
		client = http.DefaultClient
	}
	httpResp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return nil, fmt.Errorf("fleet: /predict/batch status %d: %s", httpResp.StatusCode, bytes.TrimSpace(msg))
	}
	var resp serve.BatchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("fleet: /predict/batch decode: %w", err)
	}
	out, err := batchToOps(keys, &resp)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	o.lookups += int64(len(keys))
	for _, k := range keys {
		o.distinct[k] = true
	}
	o.mu.Unlock()
	return out, nil
}

// Stats reports lookup and distinct-key counts.
func (o *HTTPOracle) Stats() OracleStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return OracleStats{Lookups: o.lookups, Distinct: int64(len(o.distinct))}
}

func (k OpKey) predictRequest() serve.PredictRequest {
	return serve.PredictRequest{Device: k.Device, DType: k.DType, Pattern: k.Pattern, Size: k.Size}
}

// batchToOps converts a batch response back into operating points,
// failing on the first item-level error (a fleet cannot schedule a job
// it has no operating point for).
func batchToOps(keys []OpKey, resp *serve.BatchResponse) ([]OperatingPoint, error) {
	if len(resp.Items) != len(keys) {
		return nil, fmt.Errorf("fleet: batch returned %d items for %d keys", len(resp.Items), len(keys))
	}
	out := make([]OperatingPoint, len(keys))
	for i, item := range resp.Items {
		if item.Response == nil {
			return nil, fmt.Errorf("fleet: key %+v: %s", keys[i], item.Error)
		}
		r := item.Response
		out[i] = OperatingPoint{
			IterTimeS:  r.IterTimeS,
			PowerW:     r.SimulatedW,
			PredictedW: r.PredictedW,
			BusyFrac:   r.BusyFrac,
			Throttled:  r.Throttled,
		}
	}
	return out, nil
}

// resolveKeyParts turns an OpKey into executable simulator inputs.
func resolveKeyParts(k OpKey) (*device.Device, matrix.DType, patterns.Pattern, error) {
	dev := device.ByName(k.Device)
	if dev == nil {
		return nil, 0, patterns.Pattern{}, fmt.Errorf("fleet: unknown device %q (have %v)", k.Device, device.Names())
	}
	dt, ok := matrix.ParseDType(k.DType)
	if !ok {
		return nil, 0, patterns.Pattern{}, fmt.Errorf("fleet: unknown dtype %q", k.DType)
	}
	pat, err := patterns.Parse(k.Pattern)
	if err != nil {
		return nil, 0, patterns.Pattern{}, fmt.Errorf("fleet: bad pattern: %w", err)
	}
	return dev, dt, pat, nil
}
