package fleet

import (
	"bytes"
	"reflect"
	"testing"
)

func TestTraceWriteReadRoundTrip(t *testing.T) {
	// The recorder half of trace replay: a synthetic trace dumped with
	// WriteTrace and re-read with ReadTrace must reproduce the exact
	// job stream, and a second dump must be byte-identical (so a
	// recorded fleetsim run replays to the same report).
	orig, err := Synthetic(SyntheticConfig{
		Jobs:     32,
		RatePerS: 300,
		Seed:     11,
		DTypes:   []string{"FP16", "INT8"},
		Patterns: []string{"gaussian(default)", "constant(7)", "gaussian(default) | sparsify(50%)"},
		Sizes:    []int{64, 128},
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	dumped := append([]byte(nil), buf.Bytes()...)

	replayed, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, replayed) {
		t.Fatal("trace did not survive a write/read round trip")
	}

	var again bytes.Buffer
	if err := replayed.WriteTrace(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dumped, again.Bytes()) {
		t.Fatal("re-dumped trace differs byte-for-byte from the original dump")
	}
}

func TestTraceWritePinnedDeviceSurvives(t *testing.T) {
	orig := &Trace{Jobs: []Job{
		{ID: "a", Device: "A100-PCIe-40GB", DType: "FP16", Pattern: "constant(1)", Size: 64, Iterations: 100},
		{ID: "b", DType: "INT8", Pattern: "gaussian( default )", Size: 32, ArrivalS: 0.5, Iterations: 50},
	}}
	if err := orig.normalize(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, replayed) {
		t.Fatalf("round trip lost fields:\norig:     %+v\nreplayed: %+v", orig, replayed)
	}
	if replayed.Jobs[0].Device != "A100-PCIe-40GB" {
		t.Error("device pin lost in round trip")
	}
	// normalize canonicalized the pattern before the dump, so the
	// replayed job spec (and with it every oracle key) is unchanged.
	if replayed.Jobs[1].Pattern != "gaussian(default)" {
		t.Errorf("pattern %q not canonical after round trip", replayed.Jobs[1].Pattern)
	}
}
