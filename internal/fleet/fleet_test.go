package fleet

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/serve"
)

// testTrace is a small mixed workload: 24 jobs over 4 distinct specs,
// arriving fast enough to queue on a small fleet.
func testTrace(t *testing.T) *Trace {
	t.Helper()
	// Sizes 256/512 so devices draw meaningfully above their idle
	// floor (small GEMMs underutilize a 108-SM part and sit at idle,
	// which would give the cap and thermal governors nothing to do).
	tr, err := Synthetic(SyntheticConfig{
		Jobs:          24,
		RatePerS:      400,
		Seed:          7,
		DTypes:        []string{"FP16"},
		Patterns:      []string{"gaussian(default)", "constant(7)"},
		Sizes:         []int{256, 512},
		MinIterations: 2000,
		MaxIterations: 8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testFleet() []*device.Device {
	return []*device.Device{device.A100PCIe(), device.A100PCIe(), device.A100PCIe()}
}

func smallOracle() *ModelOracle { return &ModelOracle{SampleOutputs: 64} }

func TestRunDeterministic(t *testing.T) {
	// Equal configs and traces must produce byte-identical reports —
	// the property the CI smoke run asserts with cmp.
	run := func() *Report {
		r, err := Run(context.Background(), Config{
			Devices:       testFleet(),
			Oracle:        smallOracle(),
			PowerCapW:     500,
			RecordSamples: true,
		}, testTrace(t))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("two identical runs produced different reports")
	}
	var b1, b2 bytes.Buffer
	if err := r1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("JSON reports differ across identical runs")
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	tr := testTrace(t)
	r, err := Run(context.Background(), Config{Devices: testFleet(), Oracle: smallOracle()}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != len(tr.Jobs) || r.Unfinished != 0 {
		t.Fatalf("completed %d / unfinished %d of %d jobs", r.Completed, r.Unfinished, len(tr.Jobs))
	}
	for _, jr := range r.JobResults {
		if jr.Error != "" {
			t.Fatalf("job %s failed: %s", jr.ID, jr.Error)
		}
		// Latency can never be below the job's own full-clock service
		// time (queueing and throttling only add).
		if jr.LatencyS < jr.ServiceS-1e-9 {
			t.Errorf("job %s: latency %v below service time %v", jr.ID, jr.LatencyS, jr.ServiceS)
		}
	}
	if r.LatencyP50S > r.LatencyP99S || r.LatencyP99S > r.LatencyMaxS {
		t.Errorf("latency percentiles not monotone: p50=%v p99=%v max=%v",
			r.LatencyP50S, r.LatencyP99S, r.LatencyMaxS)
	}
	var util float64
	for _, d := range r.Devices {
		util += d.UtilizationFrac
	}
	if util <= 0 {
		t.Error("no device reported utilization")
	}
}

func TestPowerCapThrottles(t *testing.T) {
	// An aggregate cap below the fleet's natural demand must produce
	// cap throttle events, hold the sampled fleet power at or below
	// the cap, and stretch the makespan versus the uncapped run.
	tr := testTrace(t)
	uncapped, err := Run(context.Background(), Config{
		Devices: testFleet(), Oracle: smallOracle(), RecordSamples: true,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if uncapped.PeakFleetW <= 0 {
		t.Fatal("uncapped run reports no power")
	}
	// Cap halfway between idle floor and observed peak demand.
	idle := 3 * device.A100PCIe().IdleWatts
	cap := idle + (uncapped.PeakFleetW-idle)*0.5

	capped, err := Run(context.Background(), Config{
		Devices: testFleet(), Oracle: smallOracle(), PowerCapW: cap, RecordSamples: true,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	var capEvents int
	for _, ev := range capped.ThrottleEvents {
		if ev.Reason == "cap" {
			capEvents++
			if ev.EndS <= ev.StartS {
				t.Errorf("empty throttle event %+v", ev)
			}
		}
	}
	if capEvents == 0 {
		t.Fatal("cap below demand produced no cap throttle events")
	}
	for _, sm := range capped.Samples {
		if sm.FleetW > cap+1e-6 {
			t.Fatalf("sample at %vs: fleet power %v exceeds cap %v", sm.TimeS, sm.FleetW, cap)
		}
	}
	if capped.PeakFleetW > cap+1e-6 {
		t.Errorf("peak fleet power %v exceeds cap %v", capped.PeakFleetW, cap)
	}
	if capped.DurationS <= uncapped.DurationS {
		t.Errorf("capped makespan %v not longer than uncapped %v", capped.DurationS, uncapped.DurationS)
	}
	if capped.Completed != len(tr.Jobs) {
		t.Errorf("capped run completed %d of %d jobs", capped.Completed, len(tr.Jobs))
	}
}

func TestThermalThrottle(t *testing.T) {
	// A hot aisle (ambient far above the preset's 30 °C calibration)
	// must drive devices to their throttle temperature and clamp them
	// there: thermal events appear and no die exceeds the limit by
	// more than integration slack.
	tr := testTrace(t)
	// At 72 °C inlet the A100's thermal budget is
	// (83−72)/0.155 ≈ 71 W — between its 55 W idle floor and the
	// ~83 W a 512² FP16 GEMM draws, so sustained load must throttle.
	r, err := Run(context.Background(), Config{
		Devices:     []*device.Device{device.A100PCIe()},
		Oracle:      smallOracle(),
		AmbientC:    72,
		ThermalTauS: 0.05,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	var thermal int
	for _, ev := range r.ThrottleEvents {
		if ev.Reason == "thermal" {
			thermal++
		}
	}
	if thermal == 0 {
		t.Fatal("hot ambient produced no thermal throttle events")
	}
	limit := device.A100PCIe().Thermal.ThrottleTempC
	for _, d := range r.Devices {
		if d.MaxTempC > limit+0.5 {
			t.Errorf("%s reached %v°C, throttle limit is %v°C", d.Device, d.MaxTempC, limit)
		}
		if d.ThermalThrottledS <= 0 {
			t.Errorf("%s reports no thermal-throttled time", d.Device)
		}
	}

	if _, err := Run(context.Background(), Config{
		Devices: testFleet(), Oracle: smallOracle(), AmbientC: 90,
	}, tr); err == nil {
		t.Error("ambient above the throttle point must be rejected")
	}
}

func TestOracleCoalescing(t *testing.T) {
	// 24 jobs × 2 distinct specs × 2 fleet models: the oracle must see
	// one lookup per (job, candidate model) but simulate only the
	// distinct keys.
	tr, err := Synthetic(SyntheticConfig{
		Jobs: 24, RatePerS: 400, Seed: 3,
		DTypes: []string{"FP16"}, Patterns: []string{"gaussian(default)", "constant(7)"},
		Sizes: []int{32}, MinIterations: 1000, MaxIterations: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := smallOracle()
	r, err := Run(context.Background(), Config{
		Devices: []*device.Device{device.A100PCIe(), device.H100SXM()},
		Oracle:  o,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Oracle.Lookups != int64(24*2) {
		t.Errorf("lookups = %d, want %d", r.Oracle.Lookups, 24*2)
	}
	if r.Oracle.Distinct != int64(2*2) {
		t.Errorf("distinct = %d, want %d (2 specs × 2 models)", r.Oracle.Distinct, 4)
	}
}

func TestServerOracleMatchesModelOracle(t *testing.T) {
	// The serving-backed oracle must drive the fleet to the same
	// physical outcome as the offline model oracle: same powers, same
	// makespan, same completions (PredictedW may differ — that is the
	// fitted model's output).
	tr, err := Synthetic(SyntheticConfig{
		Jobs: 8, RatePerS: 400, Seed: 5,
		DTypes: []string{"FP16"}, Patterns: []string{"gaussian(default)", "constant(7)"},
		Sizes: []int{32, 64}, MinIterations: 1000, MaxIterations: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	devs := []*device.Device{device.A100PCIe()}

	offline, err := Run(context.Background(), Config{Devices: devs, Oracle: smallOracle()}, tr)
	if err != nil {
		t.Fatal(err)
	}

	srv := serve.New(serve.Config{
		CacheSize: 64, MaxSize: 192, SampleOutputs: 64,
		Training: experiments.TrainingConfig{
			Sizes: []int{32, 48, 64},
			Patterns: []string{
				"gaussian(default)", "gaussian(mean=500, std=1)", "constant(7)",
				"constant(random)", "set(n=4, mean=0, std=210)",
				"gaussian(default) | sparsify(50%)", "gaussian(default) | sort(rows, 100%)",
			},
			SampleOutputs: 64, Seed: 1,
		},
	})
	defer srv.Close()
	served, err := Run(context.Background(), Config{Devices: devs, Oracle: NewServerOracle(srv)}, tr)
	if err != nil {
		t.Fatal(err)
	}

	if served.DurationS != offline.DurationS {
		t.Errorf("makespan differs: served %v, offline %v", served.DurationS, offline.DurationS)
	}
	if served.FleetEnergyJ != offline.FleetEnergyJ {
		t.Errorf("fleet energy differs: served %v, offline %v", served.FleetEnergyJ, offline.FleetEnergyJ)
	}
	if len(served.JobResults) != len(offline.JobResults) {
		t.Fatalf("job counts differ: %d vs %d", len(served.JobResults), len(offline.JobResults))
	}
	for i := range served.JobResults {
		a, b := served.JobResults[i], offline.JobResults[i]
		if a.ID != b.ID || a.PowerW != b.PowerW || a.LatencyS != b.LatencyS {
			t.Errorf("job %d differs: served %+v, offline %+v", i, a, b)
		}
		// The fitted predictor tracks the simulator closely at
		// training scale — the number an operator would provision on.
		if b.PowerW > 0 {
			if rel := math.Abs(a.PredictedW-a.PowerW) / a.PowerW; rel > 0.05 {
				t.Errorf("job %s: predicted %vW vs simulated %vW (%.1f%% off)", a.ID, a.PredictedW, a.PowerW, 100*rel)
			}
		}
	}
}

func TestTraceReadAndValidate(t *testing.T) {
	in := `{"jobs": [
		{"id": "b", "dtype": "FP16", "pattern": "gaussian( default )", "size": 32, "arrival_s": 0.5, "iterations": 100},
		{"id": "a", "dtype": "INT8", "pattern": "constant(7)", "size": 64, "arrival_s": 0.5, "iterations": 200},
		{"dtype": "FP32", "pattern": "gaussian(default)", "size": 32, "arrival_s": 0.1, "iterations": 50}
	]}`
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by (arrival, ID); pattern canonicalized; default ID
	// assigned from the original index.
	if tr.Jobs[0].ID != "job2" || tr.Jobs[1].ID != "a" || tr.Jobs[2].ID != "b" {
		t.Errorf("trace order = %s, %s, %s", tr.Jobs[0].ID, tr.Jobs[1].ID, tr.Jobs[2].ID)
	}
	if tr.Jobs[2].Pattern != "gaussian(default)" {
		t.Errorf("pattern not canonicalized: %q", tr.Jobs[2].Pattern)
	}

	bad := []string{
		`{"jobs": []}`,
		`{"jobs": [{"dtype": "FP13", "pattern": "constant(7)", "size": 32, "iterations": 1}]}`,
		`{"jobs": [{"dtype": "FP16", "pattern": "nope(", "size": 32, "iterations": 1}]}`,
		`{"jobs": [{"dtype": "FP16", "pattern": "constant(7)", "size": 4, "iterations": 1}]}`,
		`{"jobs": [{"dtype": "FP16", "pattern": "constant(7)", "size": 32, "iterations": 0}]}`,
		`{"jobs": [{"dtype": "FP16", "pattern": "constant(7)", "size": 32, "iterations": 1, "unknown_field": 1}]}`,
	}
	for _, s := range bad {
		if _, err := ReadTrace(strings.NewReader(s)); err == nil {
			t.Errorf("trace %s must be rejected", s)
		}
	}
}

func TestPinnedJobs(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{ID: "pinned", Device: "H100-SXM5-80GB", DType: "FP16", Pattern: "constant(7)", Size: 32, Iterations: 500},
		{ID: "free", DType: "FP16", Pattern: "constant(7)", Size: 32, Iterations: 500},
	}}
	r, err := Run(context.Background(), Config{
		Devices: []*device.Device{device.A100PCIe(), device.H100SXM()},
		Oracle:  smallOracle(),
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range r.JobResults {
		if jr.ID == "pinned" && !strings.HasPrefix(jr.Device, "H100") {
			t.Errorf("pinned job ran on %s", jr.Device)
		}
	}

	badPin := &Trace{Jobs: []Job{
		{Device: "V100-SXM2-32GB", DType: "FP16", Pattern: "constant(7)", Size: 32, Iterations: 10},
	}}
	if _, err := Run(context.Background(), Config{
		Devices: []*device.Device{device.A100PCIe()}, Oracle: smallOracle(),
	}, badPin); err == nil {
		t.Error("job pinned to an absent model must fail the run")
	}
}

func TestReportCSV(t *testing.T) {
	tr := testTrace(t)
	r, err := Run(context.Background(), Config{
		Devices: testFleet(), Oracle: smallOracle(), RecordSamples: true,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	wantCols := 2 + 2*len(r.Devices)
	for i, line := range lines {
		if got := len(strings.Split(line, ",")); got != wantCols {
			t.Fatalf("line %d has %d columns, want %d", i, got, wantCols)
		}
	}

	noSamples, err := Run(context.Background(), Config{Devices: testFleet(), Oracle: smallOracle()}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := noSamples.WriteCSV(&buf); err == nil {
		t.Error("CSV without samples must error")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(SyntheticConfig{Jobs: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(SyntheticConfig{Jobs: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("equal seeds produced different traces")
	}
	c, err := Synthetic(SyntheticConfig{Jobs: 50, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical traces")
	}
	for i := 1; i < len(a.Jobs); i++ {
		if a.Jobs[i].ArrivalS < a.Jobs[i-1].ArrivalS {
			t.Fatal("arrivals not sorted")
		}
	}
}
