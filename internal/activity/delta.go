package activity

import (
	"slices"

	"repro/internal/bitops"
	"repro/internal/matrix"
	"repro/internal/softfloat"
)

// Incremental operand statistics. A transform applied to a cached base
// matrix (bit flips, sparsification) touches an enumerable set of
// positions; everything an OperandStats holds is a sum over elements or
// adjacent pairs, so the transformed operand's stats follow from the
// base's stats plus a correction for the touched neighborhoods —
// O(touched) instead of a full O(rows·cols) rescan. The full-rescan
// path (ScanA/ScanB) is retained and remains the reference the delta
// path is property-tested against.

// deltaDenseFrac: beyond this fraction of touched elements the rescan
// is cheaper than sorting and patching, so Delta returns nil and the
// caller falls back to ScanA/ScanB. Shared with the tracked transforms
// (matrix.SparsifyTouched, matrix.RandomBitFlipsTouched), which use it
// to skip enumerating a touched set the scans would decline anyway.
const deltaDenseFrac = matrix.DeltaDenseFrac // touched > len(bits)/deltaDenseFrac ⇒ rescan

// sigWeight returns the per-element significand-weight function the
// scans use for this dtype.
func sigWeight(dt matrix.DType) func(uint32) int64 {
	if tab := sigTab16(dt); tab != nil {
		return func(b uint32) int64 { return int64(tab[b&0xFFFF]) }
	}
	return func(b uint32) int64 { return int64(softfloat.SigPop32(b)) }
}

// prepTouched sorts and dedups a copy of the touched index list.
func prepTouched(touched []int32) []int32 {
	idx := append([]int32(nil), touched...)
	slices.Sort(idx)
	return slices.Compact(idx)
}

// DeltaRowScan returns new stats for cur given st = ScanA(base), where
// cur differs from base only at the touched positions (row-major
// element indices; duplicates allowed). Returns nil when the touched
// set is dense enough that a full rescan is cheaper — the caller must
// then fall back to ScanA(cur). Results are integer-exact: identical
// to ScanA(cur) on every field.
func (st *OperandStats) DeltaRowScan(base, cur *matrix.Matrix, touched []int32) *OperandStats {
	if st == nil || deltaDenseFrac*len(touched) > len(base.Bits) {
		return nil
	}
	ns := st.clone()
	idx := prepTouched(touched)
	sig := sigWeight(base.DType)
	hmask := bitops.LowMask(base.DType.Width())
	cols := int32(base.Cols)
	for pi, t := range idx {
		ob, nb := base.Bits[t], cur.Bits[t]
		c := t % cols
		ns.Hamming += int64(bitops.Popcount32(nb&hmask)) - int64(bitops.Popcount32(ob&hmask))
		if (nb != 0) != (ob != 0) {
			if nb != 0 {
				ns.NonZero++
			} else {
				ns.NonZero--
			}
		}
		ns.Sig[c] += sig(nb) - sig(ob)
		// Row-adjacent toggle pairs. Each affected pair is corrected
		// exactly once: the left pair (t-1, t) is skipped when t-1 is
		// itself touched, because t-1 already corrected it as its
		// right pair using the same old/new values.
		if c > 0 && !(pi > 0 && idx[pi-1] == t-1) {
			ns.Toggles += int64(bitops.Toggle32(cur.Bits[t-1], nb)) - int64(bitops.Toggle32(base.Bits[t-1], ob))
		}
		if c+1 < cols {
			ns.Toggles += int64(bitops.Toggle32(nb, cur.Bits[t+1])) - int64(bitops.Toggle32(ob, base.Bits[t+1]))
		}
	}
	return ns
}

// DeltaColScan is DeltaRowScan for column-stream stats: st = ScanB(base),
// returns stats identical to ScanB(cur) on every field, or nil for the
// dense fallback.
func (st *OperandStats) DeltaColScan(base, cur *matrix.Matrix, touched []int32) *OperandStats {
	if st == nil || deltaDenseFrac*len(touched) > len(base.Bits) {
		return nil
	}
	ns := st.clone()
	idx := prepTouched(touched)
	sig := sigWeight(base.DType)
	hmask := bitops.LowMask(base.DType.Width())
	cols := int32(base.Cols)
	size := int32(len(base.Bits))
	for _, t := range idx {
		ob, nb := base.Bits[t], cur.Bits[t]
		ns.Hamming += int64(bitops.Popcount32(nb&hmask)) - int64(bitops.Popcount32(ob&hmask))
		if (nb != 0) != (ob != 0) {
			if nb != 0 {
				ns.NonZero++
			} else {
				ns.NonZero--
			}
		}
		ns.Sig[t/cols] += sig(nb) - sig(ob)
		// Column-adjacent toggle pairs, same each-pair-once rule: the
		// up pair (t-cols, t) is skipped when t-cols is touched (it
		// corrected the pair as its down pair).
		if t >= cols {
			up := t - cols
			if _, found := slices.BinarySearch(idx, up); !found {
				ns.Toggles += int64(bitops.Toggle32(cur.Bits[up], nb)) - int64(bitops.Toggle32(base.Bits[up], ob))
			}
		}
		if t+cols < size {
			dn := t + cols
			ns.Toggles += int64(bitops.Toggle32(nb, cur.Bits[dn])) - int64(bitops.Toggle32(ob, base.Bits[dn]))
		}
	}
	return ns
}
