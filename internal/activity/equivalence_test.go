package activity

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/patterns"
	"repro/internal/rng"
)

// Property tests pinning the incremental/fused fast paths to the full
// reference computations, byte-for-byte on every field:
//
//   - DeltaRowScan/DeltaColScan ≡ ScanA/ScanB after a tracked
//     transform chain, across dtypes × chains × seeds.
//   - EncodeScanGaussian / EncodeScanValues / GenerateGaussianFused ≡
//     the unfused encode followed by ScanA, including the FP16
//     conversion range tails (subnormal, overflow).
//   - AnalyzeWithStats fed precomputed operand stats ≡ the full-rescan
//     Analyze, on every Report field, for both storage orientations.
//
// The full-rescan path is not legacy: it stays the selectable
// reference (AnalyzeWithStats with nil stats takes it), and these
// tests are what entitle the engine to skip it on hot paths.

// statsEqual fails the test unless the two operand stats agree exactly
// on every field.
func statsEqual(t *testing.T, ctx string, got, want *OperandStats) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil stats (got %v, want %v)", ctx, got, want)
	}
	if got.Toggles != want.Toggles {
		t.Errorf("%s: Toggles = %d, want %d", ctx, got.Toggles, want.Toggles)
	}
	if got.Hamming != want.Hamming {
		t.Errorf("%s: Hamming = %d, want %d", ctx, got.Hamming, want.Hamming)
	}
	if got.NonZero != want.NonZero {
		t.Errorf("%s: NonZero = %d, want %d", ctx, got.NonZero, want.NonZero)
	}
	if !reflect.DeepEqual(got.Sig, want.Sig) {
		t.Errorf("%s: per-column Sig sums differ", ctx)
	}
}

// TestDeltaScanEquivalence: applying a tracked transform chain to a
// clone and patching the base's stats by the touched positions must
// reproduce the full rescan of the transformed matrix exactly — in
// both stream orientations — and the tracked application itself must
// leave bits identical to the plain Transform (same RNG stream).
func TestDeltaScanEquivalence(t *testing.T) {
	chains := []struct {
		name string
		pat  func() patterns.Pattern
	}{
		{"flips", func() patterns.Pattern { return patterns.GaussianDefault().BitFlips(0.002) }},
		{"sparse", func() patterns.Pattern { return patterns.GaussianDefault().Sparse(0.05) }},
		{"flips|sparse", func() patterns.Pattern {
			return patterns.Gaussian(3, 7).BitFlips(0.001).Sparse(0.02)
		}},
		{"set|flips", func() patterns.Pattern {
			return patterns.FromSet(16, 0, 210).BitFlips(0.002)
		}},
	}
	const rows, cols = 48, 32
	for _, dt := range matrix.ExtendedDTypes {
		for _, ch := range chains {
			for seed := uint64(1); seed <= 3; seed++ {
				ctx := fmt.Sprintf("%v/%s/seed%d", dt, ch.name, seed)
				pat := ch.pat()
				base := matrix.New(dt, rows, cols)
				pat.BaseFill(base, rng.Derive(seed, "base"))

				cur := base.Clone()
				touched, ok := pat.DeltaTransform(cur, rng.Derive(seed, "x"))
				if !ok {
					t.Fatalf("%s: chain unexpectedly untrackable", ctx)
				}
				ref := base.Clone()
				pat.Transform(ref, rng.Derive(seed, "x"))
				if !reflect.DeepEqual(cur.Bits, ref.Bits) {
					t.Fatalf("%s: tracked transform diverges from plain transform", ctx)
				}

				rowSt := ScanA(base).DeltaRowScan(base, cur, touched)
				if rowSt == nil {
					t.Fatalf("%s: dense fallback triggered (%d touches)", ctx, len(touched))
				}
				statsEqual(t, ctx+"/row", rowSt, ScanA(cur))

				colSt := ScanB(base).DeltaColScan(base, cur, touched)
				if colSt == nil {
					t.Fatalf("%s: dense fallback triggered (%d touches)", ctx, len(touched))
				}
				statsEqual(t, ctx+"/col", colSt, ScanB(cur))
			}
		}
	}
}

// TestDeltaScanDenseFallback: a touch set dense enough that patching
// would cost more than rescanning must return nil so the caller takes
// the retained full-rescan path.
func TestDeltaScanDenseFallback(t *testing.T) {
	m := matrix.New(matrix.FP32, 8, 8)
	touched := make([]int32, len(m.Bits))
	for i := range touched {
		touched[i] = int32(i)
	}
	if ScanA(m).DeltaRowScan(m, m, touched) != nil {
		t.Error("DeltaRowScan must decline dense touch sets")
	}
	if ScanB(m).DeltaColScan(m, m, touched) != nil {
		t.Error("DeltaColScan must decline dense touch sets")
	}
}

// TestEncodeScanGaussianEquivalence: the fused encode+scan must write
// the same bits and return the same stats as EncodeGaussianStream
// followed by ScanA. The tiny and huge σ values push FP16 into its
// subnormal and overflow conversion tails, so the hand-inlined
// normal-range path's range check is exercised on both sides.
func TestEncodeScanGaussianEquivalence(t *testing.T) {
	const rows, cols = 24, 40
	params := []struct{ mean, std float64 }{
		{0, 210}, {500, 1}, {0, 25}, {0, 1e-7}, {0, 7e4}, {-3, 0},
	}
	for _, dt := range matrix.ExtendedDTypes {
		for _, pr := range params {
			for seed := uint64(1); seed <= 2; seed++ {
				ctx := fmt.Sprintf("%v/mean=%g,std=%g/seed%d", dt, pr.mean, pr.std, seed)
				raw := matrix.GaussianStream(rng.Derive(seed, "g"), rows*cols)

				ref := matrix.New(dt, rows, cols)
				matrix.EncodeGaussianStream(ref, raw, pr.mean, pr.std)

				m := matrix.New(dt, rows, cols)
				st := EncodeScanGaussian(m, raw, pr.mean, pr.std)
				if !reflect.DeepEqual(m.Bits, ref.Bits) {
					t.Fatalf("%s: fused encode bits diverge", ctx)
				}
				statsEqual(t, ctx, st, ScanA(ref))
			}
		}
	}
}

// TestEncodeScanValuesEquivalence: same contract for the verbatim
// (value-set) encode.
func TestEncodeScanValuesEquivalence(t *testing.T) {
	const rows, cols = 24, 40
	for _, dt := range matrix.ExtendedDTypes {
		for seed := uint64(1); seed <= 3; seed++ {
			ctx := fmt.Sprintf("%v/seed%d", dt, seed)
			raw := matrix.FromSetStream(rng.Derive(seed, "s"), 16, 0, 210, rows*cols)

			ref := matrix.New(dt, rows, cols)
			matrix.EncodeValues(ref, raw)

			m := matrix.New(dt, rows, cols)
			st := EncodeScanValues(m, raw)
			if !reflect.DeepEqual(m.Bits, ref.Bits) {
				t.Fatalf("%s: fused encode bits diverge", ctx)
			}
			statsEqual(t, ctx, st, ScanA(ref))
		}
	}
}

// TestGenerateGaussianFusedEquivalence: one fused multi-class
// generation must equal the reference pipeline — one shared draw
// stream, then per class an independent encode and rescan — in bits
// and stats for every class.
func TestGenerateGaussianFusedEquivalence(t *testing.T) {
	const rows, cols = 32, 24
	for seed := uint64(1); seed <= 3; seed++ {
		targets := make([]GaussianTarget, 0, len(matrix.ExtendedDTypes))
		for _, dt := range matrix.ExtendedDTypes {
			std := 210.0
			if dt == matrix.INT8 {
				std = 25
			}
			targets = append(targets, GaussianTarget{
				M: matrix.New(dt, rows, cols), Mean: 0, Std: std,
			})
		}
		GenerateGaussianFused(rng.Derive(seed, "multi"), targets)

		raw := matrix.GaussianStream(rng.Derive(seed, "multi"), rows*cols)
		for _, tg := range targets {
			ctx := fmt.Sprintf("%v/seed%d", tg.M.DType, seed)
			ref := matrix.New(tg.M.DType, rows, cols)
			matrix.EncodeGaussianStream(ref, raw, tg.Mean, tg.Std)
			if !reflect.DeepEqual(tg.M.Bits, ref.Bits) {
				t.Fatalf("%s: fused generation bits diverge", ctx)
			}
			statsEqual(t, ctx, tg.Stats, ScanA(ref))
		}
	}
}

// TestAnalyzeWithStatsEquivalence: an analysis fed precomputed operand
// stats (the experiments engine's incremental path) must produce a
// Report identical on every field to the full-rescan analysis, for
// both B storage orientations.
func TestAnalyzeWithStatsEquivalence(t *testing.T) {
	const n = 48
	cfg := Config{SampleOutputs: 32, Seed: 0xAC71}
	for _, dt := range matrix.ExtendedDTypes {
		a := matrix.New(dt, n, n)
		g := matrix.New(dt, n, n)
		matrix.FillGaussian(a, rng.Derive(7, "A"), 0, matrix.DefaultStd(dt))
		matrix.FillGaussian(g, rng.Derive(7, "B"), 0, matrix.DefaultStd(dt))
		for _, transposed := range []bool{false, true} {
			ctx := fmt.Sprintf("%v/transposed=%v", dt, transposed)
			prob := kernels.NewProblem(dt, a, g)
			stB := ScanB(g)
			if transposed {
				prob = kernels.NewTransposedProblem(dt, a, g)
				// Transposed storage streams B row-wise: the operand's
				// column-stream profile is the stored matrix's row scan.
				stB = ScanA(g)
			}
			want, err := AnalyzeWithStats(prob, cfg, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := AnalyzeWithStats(prob, cfg, ScanA(a), stB)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Report differs:\n got %+v\nwant %+v", ctx, got, want)
			}
		}
	}
}
