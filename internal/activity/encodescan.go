package activity

import (
	"math"
	"math/bits"

	"repro/internal/bitops"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/softfloat"
)

// Fused generation scans: encoding a raw draw stream into a matrix
// touches every element exactly once, so the row-stream operand scan
// can ride along while each encoded value is still in a register —
// one memory pass instead of encode-then-rescan. The encode arms must
// stay expression-identical to matrix.EncodeGaussianStream /
// matrix.EncodeValues, and the statistics arithmetic identical to
// ScanA (the significand weights are computed arithmetically here;
// the scan tables are built from the same functions and verified
// exhaustively equal in softfloat's tests). Both equivalences are also
// covered end-to-end by the incremental-equivalence property tests.
//
// The loops accumulate into locals (not struct fields, which Go would
// re-store per iteration) and re-slice row/sig to the raw chunk length
// so the per-element bounds checks vanish.

// EncodeScanGaussian is matrix.EncodeGaussianStream fused with ScanA:
// it writes mean + std·raw[i] into m with the datatype's
// round-to-nearest encode and returns the encoded matrix's row-stream
// OperandStats. Bits and stats are bit-identical to the unfused pair.
func EncodeScanGaussian(m *matrix.Matrix, raw []float64, mean, std float64) *OperandStats {
	raw = raw[:len(m.Bits)]
	st := &OperandStats{Sig: make([]int64, m.Cols)}
	cols := m.Cols
	for i := 0; i < m.Rows; i++ {
		encodeScanGaussianRow(m, i, raw[i*cols:i*cols+cols], mean, std, st)
	}
	return st
}

// GaussianTarget is one encoding class's destination in a fused
// multi-class generation: the matrix to fill, its affine value map,
// and the row-stream stats extracted alongside.
type GaussianTarget struct {
	M         *matrix.Matrix
	Mean, Std float64
	Stats     *OperandStats
}

// GenerateGaussianFused draws one Gaussian variate stream row by row
// and encodes every target from the still-cache-hot row buffer,
// extracting each target's row-stream OperandStats in the same pass.
// The draw order (row-major, one NormFloat64 per element) and the
// per-target encode are bit-identical to GaussianStream followed by
// per-target EncodeGaussianStream; the stats equal ScanA of the
// encoded matrices. All targets must share the matrix shape.
func GenerateGaussianFused(src *rng.Source, targets []GaussianTarget) {
	if len(targets) == 0 {
		return
	}
	rows, cols := targets[0].M.Rows, targets[0].M.Cols
	for ti := range targets {
		t := &targets[ti]
		if t.M.Rows != rows || t.M.Cols != cols {
			panic("activity: GenerateGaussianFused targets differ in shape")
		}
		if t.Stats == nil {
			t.Stats = &OperandStats{Sig: make([]int64, cols)}
		} else if t.Stats.Sig == nil {
			t.Stats.Sig = make([]int64, cols)
		}
	}
	buf := make([]float64, cols)
	for i := 0; i < rows; i++ {
		for j := range buf {
			buf[j] = src.NormFloat64()
		}
		for ti := range targets {
			t := &targets[ti]
			encodeScanGaussianRow(t.M, i, buf, t.Mean, t.Std, t.Stats)
		}
	}
}

// encodeScanGaussianRow encodes one row's raw chunk into m's row i and
// folds the row's statistics into st. The encode expressions match
// matrix.EncodeGaussianStream arm for arm; the statistics arithmetic
// matches ScanA (toggles reset per row, per-column significand sums).
func encodeScanGaussianRow(m *matrix.Matrix, i int, raw []float64, mean, std float64, st *OperandStats) {
	var hamming, nonZero, toggles int64
	switch m.DType {
	case matrix.FP32:
		row := m.Row(i)
		rr := raw[:len(row)]
		sg := st.Sig[:len(row)]
		var prev uint32
		for kk, r := range rr {
			b := math.Float32bits(float32(mean + std*r))
			row[kk] = b
			sg[kk] += int64(bits.OnesCount32(softfloat.Significand32(b)))
			hamming += int64(bits.OnesCount32(b))
			if b != 0 {
				nonZero++
			}
			if kk > 0 {
				toggles += int64(bits.OnesCount32(prev ^ b))
			}
			prev = b
		}
	case matrix.FP16, matrix.FP16T:
		row := m.Row(i)
		rr := raw[:len(row)]
		sg := st.Sig[:len(row)]
		var prev uint32
		for kk, r := range rr {
			// F32ToF16's normal-range path, hand-inlined (the full
			// conversion exceeds the inlining budget); range tails
			// fall back to the function, which re-selects the path.
			f := float32(mean + std*r)
			fb := math.Float32bits(f)
			ab := fb &^ 0x8000_0000
			var b uint32
			if ab-softfloat.F16SubnormF32 < softfloat.F16MaxF32-softfloat.F16SubnormF32 {
				mantOdd := (ab >> 13) & 1
				ab -= uint32(112) << 23
				ab += 0xFFF + mantOdd
				b = uint32(uint16(fb>>16)&softfloat.F16SignMask | uint16(ab>>13))
			} else {
				b = uint32(softfloat.F32ToF16(f))
			}
			row[kk] = b
			sg[kk] += int64(bits.OnesCount32(softfloat.Significand16(uint16(b))))
			hamming += int64(bits.OnesCount32(b))
			if b != 0 {
				nonZero++
			}
			if kk > 0 {
				toggles += int64(bits.OnesCount32(prev ^ b))
			}
			prev = b
		}
	case matrix.BF16T:
		row := m.Row(i)
		rr := raw[:len(row)]
		sg := st.Sig[:len(row)]
		var prev uint32
		for kk, r := range rr {
			b := uint32(softfloat.F32ToBF16(float32(mean + std*r)))
			row[kk] = b
			sg[kk] += int64(bits.OnesCount32(softfloat.SignificandBF16(uint16(b))))
			hamming += int64(bits.OnesCount32(b))
			if b != 0 {
				nonZero++
			}
			if kk > 0 {
				toggles += int64(bits.OnesCount32(prev ^ b))
			}
			prev = b
		}
	case matrix.INT8:
		row := m.Row(i)
		rr := raw[:len(row)]
		sg := st.Sig[:len(row)]
		var prev uint32
		for kk, r := range rr {
			b := uint32(uint8(softfloat.F32ToI8(float32(mean + std*r))))
			row[kk] = b
			// 256-byte magnitude table: branch-free, always L1-hot
			// (the arithmetic |v| has a data-dependent sign branch).
			sg[kk] += int64(softfloat.MagPopI8(uint8(b)))
			hamming += int64(bits.OnesCount32(b))
			if b != 0 {
				nonZero++
			}
			if kk > 0 {
				toggles += int64(bits.OnesCount32(prev ^ b))
			}
			prev = b
		}
	default:
		// Reference pair for datatypes without a fused arm.
		cols := m.Cols
		sub := &matrix.Matrix{DType: m.DType, Rows: 1, Cols: cols, Bits: m.Bits[i*cols : i*cols+cols]}
		matrix.EncodeGaussianStream(sub, raw, mean, std)
		rs := ScanA(sub)
		for kk := range rs.Sig {
			st.Sig[kk] += rs.Sig[kk]
		}
		hamming, nonZero, toggles = rs.Hamming, rs.NonZero, rs.Toggles
	}
	st.Hamming += hamming
	st.NonZero += nonZero
	st.Toggles += toggles
}

// EncodeScanValues is matrix.EncodeValues fused with ScanA: it writes
// the raw values into m with the datatype's encode and returns the
// encoded matrix's row-stream OperandStats.
func EncodeScanValues(m *matrix.Matrix, raw []float64) *OperandStats {
	raw = raw[:len(m.Bits)]
	st := &OperandStats{Sig: make([]int64, m.Cols)}
	tab := sigTab16(m.DType)
	hmask := bitops.LowMask(m.DType.Width())
	cols := m.Cols
	var hamming, nonZero, toggles int64
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		rr := raw[i*cols : i*cols+cols]
		rr = rr[:len(row)]
		sg := st.Sig[:len(row)]
		var prev uint32
		if tab != nil {
			for kk, r := range rr {
				b := m.DType.Encode(r)
				row[kk] = b
				sg[kk] += int64(tab[b&0xFFFF])
				hamming += int64(bits.OnesCount32(b & hmask))
				if b != 0 {
					nonZero++
				}
				if kk > 0 {
					toggles += int64(bits.OnesCount32(prev ^ b))
				}
				prev = b
			}
		} else {
			for kk, r := range rr {
				b := m.DType.Encode(r)
				row[kk] = b
				sg[kk] += int64(softfloat.SigPop32(b))
				hamming += int64(bits.OnesCount32(b & hmask))
				if b != 0 {
					nonZero++
				}
				if kk > 0 {
					toggles += int64(bits.OnesCount32(prev ^ b))
				}
				prev = b
			}
		}
	}
	st.Hamming = hamming
	st.NonZero = nonZero
	st.Toggles = toggles
	return st
}
