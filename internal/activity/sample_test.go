package activity

import (
	"testing"

	"repro/internal/matrix"
)

// TestSamplePositionsDistinct verifies the sampling-without-replacement
// fix: duplicate positions would double-count lanes and skew the scaled
// Product/Accum toggle estimates.
func TestSamplePositionsDistinct(t *testing.T) {
	cases := []struct{ n, m, samples int }{
		{8, 8, 1}, {8, 8, 63}, {8, 8, 64}, {100, 3, 250},
		{2048, 2048, 512}, {5, 7, 34},
	}
	for _, tc := range cases {
		pos := samplePositions(tc.n, tc.m, tc.samples, 0xAC71)
		if len(pos) != tc.samples {
			t.Fatalf("(%d,%d,%d): got %d positions", tc.n, tc.m, tc.samples, len(pos))
		}
		seen := make(map[[2]int]bool, len(pos))
		for _, p := range pos {
			if p[0] < 0 || p[0] >= tc.n || p[1] < 0 || p[1] >= tc.m {
				t.Fatalf("(%d,%d,%d): position %v out of range", tc.n, tc.m, tc.samples, p)
			}
			if seen[p] {
				t.Fatalf("(%d,%d,%d): duplicate position %v", tc.n, tc.m, tc.samples, p)
			}
			seen[p] = true
		}
	}
}

func TestSamplePositionsDeterministic(t *testing.T) {
	a := samplePositions(64, 64, 100, 7)
	b := samplePositions(64, 64, 100, 7)
	c := samplePositions(64, 64, 100, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical positions")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different samples")
	}
}

// BenchmarkActivity times a full Analyze per datatype at a fixed
// reduced scale — the per-job analysis cost of a figure campaign.
func BenchmarkActivity(b *testing.B) {
	for _, dt := range matrix.ExtendedDTypes {
		b.Run(dt.String(), func(b *testing.B) {
			p := gaussianProblem(dt, 256, 256, 256, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(p, Config{SampleOutputs: 128, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
