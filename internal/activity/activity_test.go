package activity

import (
	"math"
	"testing"

	"repro/internal/bitops"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/softfloat"
)

func gaussianProblem(dt matrix.DType, n, k, m int, seed uint64) *kernels.Problem {
	a := matrix.New(dt, n, k)
	b := matrix.New(dt, k, m)
	std := matrix.DefaultStd(dt)
	matrix.FillGaussian(a, rng.Derive(seed, "A"), 0, std)
	matrix.FillGaussian(b, rng.Derive(seed, "B"), 0, std)
	return kernels.NewProblem(dt, a, b)
}

// bruteForce computes operand toggles and multiplier partial-product
// units by the O(NMK) definition, the oracle for the separable fast
// path.
func bruteForce(p *kernels.Problem) (operandToggles, ppUnits int64) {
	n, k, m := p.Dims()
	sig := significandFn(p.DType)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			for kk := 0; kk+1 < k; kk++ {
				operandToggles += int64(bitops.Toggle32(p.A.At(i, kk), p.A.At(i, kk+1)))
				operandToggles += int64(bitops.Toggle32(p.B.At(kk, j), p.B.At(kk+1, j)))
			}
			for kk := 0; kk < k; kk++ {
				ha := int64(bitops.Popcount32(sig(p.A.At(i, kk))))
				hb := int64(bitops.Popcount32(sig(p.B.At(kk, j))))
				ppUnits += ha * hb
			}
		}
	}
	return operandToggles, ppUnits
}

func TestSeparableTermsMatchBruteForce(t *testing.T) {
	for _, dt := range matrix.DTypes {
		p := gaussianProblem(dt, 7, 9, 5, uint64(dt)+1)
		r, err := Analyze(p, Config{SampleOutputs: 1})
		if err != nil {
			t.Fatal(err)
		}
		wantTog, wantPP := bruteForce(p)
		if r.OperandToggles != wantTog {
			t.Errorf("%v: operand toggles = %d, brute force = %d", dt, r.OperandToggles, wantTog)
		}
		if r.MultPPUnits != wantPP {
			t.Errorf("%v: PP units = %d, brute force = %d", dt, r.MultPPUnits, wantPP)
		}
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	bad := kernels.NewProblem(matrix.FP32,
		matrix.New(matrix.FP32, 4, 8), matrix.New(matrix.FP32, 9, 4))
	if _, err := Analyze(bad, Config{}); err == nil {
		t.Error("expected shape error")
	}
}

func TestZeroMatricesHaveZeroActivity(t *testing.T) {
	for _, dt := range matrix.DTypes {
		a := matrix.New(dt, 8, 16)
		b := matrix.New(dt, 16, 8)
		r, err := Analyze(kernels.NewProblem(dt, a, b), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if r.OperandToggles != 0 || r.MultPPUnits != 0 || r.StreamToggles != 0 {
			t.Errorf("%v: zero matrices should have zero exact activity: %+v", dt, r)
		}
		if r.ProductToggles != 0 || r.AccumToggles != 0 {
			t.Errorf("%v: zero matrices should have zero sampled activity", dt)
		}
		if r.NonZeroFrac != 0 {
			t.Errorf("%v: zero matrices have no non-zero MACs", dt)
		}
		if r.MeanAlignment != 1 {
			t.Errorf("%v: all-zero operands are fully aligned, got %v", dt, r.MeanAlignment)
		}
	}
}

func TestConstantMatricesHaveNoToggles(t *testing.T) {
	// A constant operand stream never flips the operand latches — the
	// starting point of the paper's bit-similarity experiments.
	for _, dt := range matrix.DTypes {
		a := matrix.New(dt, 8, 16)
		b := matrix.New(dt, 16, 8)
		matrix.FillConstant(a, 3)
		matrix.FillConstant(b, 5)
		r, err := Analyze(kernels.NewProblem(dt, a, b), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if r.OperandToggles != 0 {
			t.Errorf("%v: constant matrices should not toggle operands", dt)
		}
		if r.MultPPUnits == 0 {
			t.Errorf("%v: constant non-zero matrices still drive the multiplier", dt)
		}
		if r.NonZeroFrac != 1 {
			t.Errorf("%v: NonZeroFrac = %v, want 1", dt, r.NonZeroFrac)
		}
	}
}

func TestRandomVsConstantActivityOrdering(t *testing.T) {
	// T4 mechanism: random data toggles more than constant data.
	for _, dt := range matrix.DTypes {
		random := gaussianProblem(dt, 16, 32, 16, 42)
		ca := matrix.New(dt, 16, 32)
		cb := matrix.New(dt, 32, 16)
		matrix.FillConstant(ca, 100)
		matrix.FillConstant(cb, 50)
		constant := kernels.NewProblem(dt, ca, cb)

		rr, err := Analyze(random, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rc, err := Analyze(constant, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rr.OperandToggles <= rc.OperandToggles {
			t.Errorf("%v: random should out-toggle constant", dt)
		}
		if rr.ProductToggles <= rc.ProductToggles {
			t.Errorf("%v: random products should out-toggle constant products", dt)
		}
	}
}

func TestSortingReducesOperandToggles(t *testing.T) {
	// T8 mechanism.
	dt := matrix.FP16
	base := gaussianProblem(dt, 32, 32, 32, 7)
	sortedA := base.A.Clone()
	sortedB := base.B.Clone()
	matrix.SortIntoRows(sortedA, 1)
	matrix.SortIntoRows(sortedB, 1)
	sorted := kernels.NewProblem(dt, sortedA, sortedB)

	rBase, err := Analyze(base, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rSorted, err := Analyze(sorted, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rSorted.OperandToggles >= rBase.OperandToggles {
		t.Errorf("sorted operand toggles %d should be below random %d",
			rSorted.OperandToggles, rBase.OperandToggles)
	}
}

func TestSparsityReducesPPUnits(t *testing.T) {
	// T12 mechanism: zero operands gate the multiplier array.
	dt := matrix.FP32
	base := gaussianProblem(dt, 16, 16, 16, 9)
	sparseA := base.A.Clone()
	sparseB := base.B.Clone()
	matrix.Sparsify(sparseA, rng.New(1), 0.5)
	matrix.Sparsify(sparseB, rng.New(2), 0.5)
	sparse := kernels.NewProblem(dt, sparseA, sparseB)

	rBase, _ := Analyze(base, Config{Seed: 3})
	rSparse, err := Analyze(sparse, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rSparse.MultPPUnits >= rBase.MultPPUnits {
		t.Error("sparsity should reduce multiplier activity")
	}
	if rSparse.NonZeroFrac >= rBase.NonZeroFrac {
		t.Error("sparsity should reduce the non-zero MAC fraction")
	}
	// (1-s)² scaling: expect roughly a quarter of the PP units.
	ratio := float64(rSparse.MultPPUnits) / float64(rBase.MultPPUnits)
	if ratio < 0.15 || ratio > 0.4 {
		t.Errorf("PP ratio under 50%%+50%% sparsity = %v, want ≈0.25", ratio)
	}
}

func TestMACsAndPerMAC(t *testing.T) {
	p := gaussianProblem(matrix.FP32, 8, 16, 4, 11)
	r, err := Analyze(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MACs != 8*16*4 {
		t.Errorf("MACs = %d", r.MACs)
	}
	pm := r.PerMAC()
	if pm.OperandToggles <= 0 || pm.MultPPUnits <= 0 {
		t.Error("per-MAC rates should be positive for random input")
	}
	var empty Report
	if empty.PerMAC() != (PerMAC{}) {
		t.Error("zero-MAC report should normalize to zero")
	}
}

func TestSampleAllPositionsWhenSmall(t *testing.T) {
	// With SampleOutputs >= N·M the walk is exhaustive and exact.
	p := gaussianProblem(matrix.INT8, 4, 8, 4, 13)
	r1, err := Analyze(p, Config{SampleOutputs: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(p, Config{SampleOutputs: 10000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive sampling is seed-independent.
	if r1.ProductToggles != r2.ProductToggles || r1.AccumToggles != r2.AccumToggles {
		t.Error("exhaustive sampling should not depend on seed")
	}
}

func TestSamplingDeterministic(t *testing.T) {
	p := gaussianProblem(matrix.FP16T, 32, 16, 32, 17)
	r1, _ := Analyze(p, Config{SampleOutputs: 64, Seed: 5})
	r2, _ := Analyze(p, Config{SampleOutputs: 64, Seed: 5})
	if r1.ProductToggles != r2.ProductToggles || r1.AccumToggles != r2.AccumToggles ||
		r1.MeanAlignment != r2.MeanAlignment {
		t.Error("same seed must give identical sampled terms")
	}
}

func TestSampledTermsApproximateExhaustive(t *testing.T) {
	p := gaussianProblem(matrix.FP32, 24, 32, 24, 19)
	exact, err := Analyze(p, Config{SampleOutputs: 24 * 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Analyze(p, Config{SampleOutputs: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	relProd := math.Abs(approx.ProductToggles-exact.ProductToggles) / exact.ProductToggles
	relAcc := math.Abs(approx.AccumToggles-exact.AccumToggles) / exact.AccumToggles
	if relProd > 0.1 || relAcc > 0.1 {
		t.Errorf("sampled terms off by prod %.3f / acc %.3f (want <0.1)", relProd, relAcc)
	}
}

func TestMeanAlignmentIdenticalOperands(t *testing.T) {
	// A and B holding the same constant align perfectly.
	dt := matrix.FP16
	a := matrix.New(dt, 8, 8)
	b := matrix.New(dt, 8, 8)
	matrix.FillConstant(a, 7)
	matrix.FillConstant(b, 7)
	r, err := Analyze(kernels.NewProblem(dt, a, b), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanAlignment != 1 {
		t.Errorf("identical constant operands: alignment = %v, want 1", r.MeanAlignment)
	}
}

func TestMeanAlignmentOppositeOperands(t *testing.T) {
	dt := matrix.FP16
	a := matrix.New(dt, 8, 8)
	b := matrix.New(dt, 8, 8)
	matrix.FillConstantBits(a, 0xAAAA)
	matrix.FillConstantBits(b, 0x5555)
	r, err := Analyze(kernels.NewProblem(dt, a, b), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanAlignment != 0 {
		t.Errorf("opposite operands: alignment = %v, want 0", r.MeanAlignment)
	}
}

func TestStreamTogglesScaleWithReuse(t *testing.T) {
	p := gaussianProblem(matrix.FP32, 16, 16, 16, 23)
	small := Config{Tile: kernels.TileConfig{BlockM: 4, BlockN: 4, BlockK: 4}, SampleOutputs: 1}
	large := Config{Tile: kernels.TileConfig{BlockM: 16, BlockN: 16, BlockK: 4}, SampleOutputs: 1}
	rs, err := Analyze(p, small)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Analyze(p, large)
	if err != nil {
		t.Fatal(err)
	}
	if rs.StreamToggles <= rl.StreamToggles {
		t.Error("smaller tiles re-stream operands more and must toggle buses more")
	}
	// Reuse factor 16/4=4 on both operands: exactly 4x.
	if rs.StreamToggles != 4*rl.StreamToggles {
		t.Errorf("stream toggles %d vs %d: want exact 4x", rs.StreamToggles, rl.StreamToggles)
	}
}

func TestHammingWeightsReported(t *testing.T) {
	p := gaussianProblem(matrix.FP32, 8, 8, 8, 29)
	r, err := Analyze(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanHammingA <= 0 || r.MeanHammingA > 32 {
		t.Errorf("MeanHammingA = %v out of range", r.MeanHammingA)
	}
	if math.Abs(r.MeanHammingA-p.A.MeanHammingWeight()) > 1e-12 {
		t.Error("MeanHammingA should match matrix stat")
	}
}

func TestFP16SampledWalkMatchesKernelArithmetic(t *testing.T) {
	// The accumulator trajectory must follow the exact FP16 FMA chain.
	dt := matrix.FP16
	a := matrix.New(dt, 1, 8)
	b := matrix.New(dt, 8, 1)
	matrix.FillGaussian(a, rng.New(1), 0, 1)
	matrix.FillGaussian(b, rng.New(2), 0, 1)
	var acc, prevAcc, prevProd uint16
	var wantProd, wantAcc int64
	for kk := 0; kk < 8; kk++ {
		prod := softfloat.Mul16(uint16(a.At(0, kk)), uint16(b.At(kk, 0)))
		wantProd += int64(bitops.Toggle16(prevProd, prod))
		prevProd = prod
		acc = softfloat.Add16(acc, prod)
		wantAcc += int64(bitops.Toggle16(prevAcc, acc))
		prevAcc = acc
	}
	r, err := Analyze(kernels.NewProblem(dt, a, b), Config{SampleOutputs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if int64(r.ProductToggles) != wantProd {
		t.Errorf("product toggles = %v, want %d", r.ProductToggles, wantProd)
	}
	if int64(r.AccumToggles) != wantAcc {
		t.Errorf("accum toggles = %v, want %d", r.AccumToggles, wantAcc)
	}
}

func BenchmarkAnalyze256FP16(b *testing.B) {
	p := gaussianProblem(matrix.FP16, 256, 256, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(p, Config{SampleOutputs: 128, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyze1024FP32(b *testing.B) {
	p := gaussianProblem(matrix.FP32, 1024, 1024, 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(p, Config{SampleOutputs: 256, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
