// Package activity extracts the switching-activity profile of a GEMM
// execution from its input matrices — the quantity the paper
// hypothesizes GPU power actually depends on (§V: bit flips during
// computation and the number of set bits).
//
// For D = A·B with A:(N,K) and B:(K,M) in operand layout, the per-lane
// datapath of the kernel consumes, for output element (i,j), the stream
// A[i,0..K-1] against B[0..K-1,j]. The total activity decomposes into:
//
//   - Operand toggles — bits flipped at the FMA/MMA input latches
//     between consecutive k-iterations. Exact in O(NK+KM):
//     Σ_{i,j,k} tog(A[i,k],A[i,k+1]) = M·Σ_{i,k} tog(A[i,k],A[i,k+1]),
//     and symmetrically N·(column toggles of B).
//   - Multiplier partial products — HW(sig(a))·HW(sig(b)) array cells
//     active per MAC, with zero operands gating the array. Exact in
//     O(NK+KM) because Σ_{i,j,k} g(a)h(b) = Σ_k (Σ_i g)(Σ_j h).
//   - Stream toggles — bus activity of staging A and B tiles through
//     DRAM/L2/shared memory, the row/column toggle sums scaled by the
//     tile reuse factors of the CUTLASS-style tiling.
//   - Product and accumulator toggles — register flips between
//     consecutive products and partial sums. These depend on the actual
//     arithmetic trajectory, so they are measured on a deterministic
//     sample of output positions (exact dtype arithmetic along k) and
//     scaled to the full output.
//
// The report also carries the paper's Fig. 8 statistics: mean bit
// alignment between multiplied operand pairs and mean Hamming weights.
package activity

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitops"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/softfloat"
)

// Config controls activity extraction.
type Config struct {
	// Tile is the threadblock tiling, which sets the stream reuse
	// factors. Zero value means the dtype default.
	Tile kernels.TileConfig
	// SampleOutputs is the number of distinct output positions whose
	// product and accumulator trajectories are walked exactly. Zero
	// means the default of 512. Positions are drawn without replacement
	// (a partial Fisher–Yates over the output index space) and are
	// deterministic given Seed.
	SampleOutputs int
	// Seed drives sample-position selection. Experiments share a fixed
	// seed so that configurations differ only in their inputs.
	Seed uint64
}

// DefaultSampleOutputs is the default number of sampled accumulator
// trajectories.
const DefaultSampleOutputs = 512

// Report is the switching-activity profile of one GEMM iteration.
// Toggle and partial-product counts are totals over the whole iteration.
type Report struct {
	MACs int64

	// Exact terms.
	OperandToggles int64 // operand-latch bit flips, A-side + B-side
	MultPPUnits    int64 // Σ HW(sig a)·HW(sig b) over all MACs
	StreamToggles  int64 // memory-hierarchy bus bit flips incl. reuse

	// Sampled terms, scaled to the full iteration.
	ProductToggles float64 // multiplier output register bit flips
	AccumToggles   float64 // accumulator register bit flips

	// Fig. 8 statistics.
	MeanAlignment float64 // mean bit alignment of multiplied pairs
	MeanHammingA  float64 // mean Hamming weight per element of A
	MeanHammingB  float64
	NonZeroFrac   float64 // fraction of MACs with both operands non-zero
}

// PerMAC returns the report normalized per multiply-accumulate.
type PerMAC struct {
	OperandToggles float64
	MultPPUnits    float64
	StreamToggles  float64
	ProductToggles float64
	AccumToggles   float64
}

// PerMAC normalizes the totals by the MAC count.
func (r *Report) PerMAC() PerMAC {
	if r.MACs == 0 {
		return PerMAC{}
	}
	n := float64(r.MACs)
	return PerMAC{
		OperandToggles: float64(r.OperandToggles) / n,
		MultPPUnits:    float64(r.MultPPUnits) / n,
		StreamToggles:  float64(r.StreamToggles) / n,
		ProductToggles: r.ProductToggles / n,
		AccumToggles:   r.AccumToggles / n,
	}
}

// Analyze extracts the activity report for the problem. A and B must be
// in operand layout (B already transposed if the experiment transposes
// it, or carried as transposed storage via Problem.BTransposed).
// Analyze always performs full operand rescans — it is the reference
// path the incremental stats are verified against.
func Analyze(p *kernels.Problem, cfg Config) (*Report, error) {
	return AnalyzeWithStats(p, cfg, nil, nil)
}

// AnalyzeWithStats is Analyze with optionally precomputed operand
// statistics: stA for A in its row-stream orientation (ScanA), stB for
// the logical B operand in its column-stream orientation (ScanB of the
// operand, which equals ScanA of the stored matrix when the problem
// stores B transposed). A nil argument falls back to a full scan of
// that operand, so Analyze ≡ AnalyzeWithStats(p, cfg, nil, nil).
// Reports are bit-identical to the full-rescan path as long as the
// stats describe the operands actually passed.
func AnalyzeWithStats(p *kernels.Problem, cfg Config, stA, stB *OperandStats) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tile == (kernels.TileConfig{}) {
		cfg.Tile = p.Tile
	}
	if cfg.SampleOutputs <= 0 {
		cfg.SampleOutputs = DefaultSampleOutputs
	}

	n, k, m := p.Dims()
	r := &Report{MACs: p.MACs()}

	// One fused pass per unscanned operand computes every exact term
	// at once — toggles, per-k-slice significand sums, Hamming weight,
	// non-zero count — instead of re-streaming the matrix once per
	// statistic.
	scanBOp := func() *OperandStats {
		if p.BTransposed {
			// Operand columns are stored rows: the row-stream scan
			// of the stored matrix IS the operand's column-stream
			// profile (the transpose stats remap).
			return ScanA(p.B)
		}
		return ScanB(p.B)
	}
	switch {
	case stA == nil && stB == nil && runtime.GOMAXPROCS(0) > 1:
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			stA = ScanA(p.A)
		}()
		stB = scanBOp()
		wg.Wait()
	default:
		if stA == nil {
			stA = ScanA(p.A)
		}
		if stB == nil {
			stB = scanBOp()
		}
	}

	var ppUnits int64
	for kk := 0; kk < k; kk++ {
		ppUnits += stA.Sig[kk] * stB.Sig[kk]
	}

	aRowToggles := stA.Toggles
	bColToggles := stB.Toggles
	r.OperandToggles = int64(m)*aRowToggles + int64(n)*bColToggles
	r.MultPPUnits = ppUnits
	r.MeanHammingA = float64(stA.Hamming) / float64(len(p.A.Bits))
	r.MeanHammingB = float64(stB.Hamming) / float64(len(p.B.Bits))
	// Independent placement approximation for the gating fraction; the
	// sampled walk refines alignment but the zero fractions are exact.
	nzA := float64(stA.NonZero) / float64(len(p.A.Bits))
	nzB := float64(stB.NonZero) / float64(len(p.B.Bits))
	r.NonZeroFrac = nzA * nzB

	// Stream toggles: each A tile row panel is re-streamed once per
	// column block of the output, each B panel once per row block.
	reuseA := int64(ceilDiv(m, cfg.Tile.BlockN))
	reuseB := int64(ceilDiv(n, cfg.Tile.BlockM))
	r.StreamToggles = reuseA*aRowToggles + reuseB*bColToggles

	sampleWalk(p, cfg, r)
	return r, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// OperandStats are the exact aggregates one fused scan extracts from an
// operand, in the operand's stream orientation: adjacent-element
// toggles along the k stream, per-k-slice significand-weight sums,
// total Hamming weight, and the non-zero element count. They are the
// memoizable part of Analyze — everything in a Report except the
// sampled trajectories derives from the two operands' OperandStats.
type OperandStats struct {
	Toggles int64   // adjacent toggles along the operand's k stream
	Sig     []int64 // Σ HW(sig ·) per k-slice
	Hamming int64   // total Hamming weight over the lane width
	NonZero int64   // elements with a non-zero bit pattern
}

// clone copies st with its own Sig backing.
func (st *OperandStats) clone() *OperandStats {
	ns := *st
	ns.Sig = append([]int64(nil), st.Sig...)
	return &ns
}

// sigTab16 returns the per-dtype significand-weight table for the
// lanes that fit a 16-bit index, or nil for FP32 (which computes its
// weight inline). Table indexing keeps the scan loops free of
// per-element indirect calls.
func sigTab16(dt matrix.DType) *[1 << 16]uint8 {
	switch dt {
	case matrix.FP16, matrix.FP16T:
		return softfloat.SigPop16Table()
	case matrix.BF16T:
		return softfloat.SigPopBF16Table()
	case matrix.INT8:
		return softfloat.MagPopI8WideTable()
	default:
		return nil
	}
}

// ScanA streams a matrix row-major once and returns its full
// OperandStats in row-stream orientation (the A operand's stream;
// also the B operand's stream when B is carried as transposed
// storage): per-column significand sums, adjacent-element toggles
// along rows, total Hamming weight, and the non-zero count.
func ScanA(mt *matrix.Matrix) *OperandStats {
	st := &OperandStats{Sig: make([]int64, mt.Cols)}
	sig := st.Sig
	tab := sigTab16(mt.DType)
	hmask := bitops.LowMask(mt.DType.Width())
	for i := 0; i < mt.Rows; i++ {
		row := mt.Row(i)
		var prev uint32
		if tab != nil {
			for kk, b := range row {
				sig[kk] += int64(tab[b&0xFFFF])
				st.Hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.NonZero++
				}
				if kk > 0 {
					st.Toggles += int64(bitops.Toggle32(prev, b))
				}
				prev = b
			}
		} else {
			for kk, b := range row {
				sig[kk] += int64(softfloat.SigPop32(b))
				st.Hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.NonZero++
				}
				if kk > 0 {
					st.Toggles += int64(bitops.Toggle32(prev, b))
				}
				prev = b
			}
		}
	}
	return st
}

// ScanB streams a matrix row-major once and returns its full
// OperandStats in column-stream orientation (the B operand's stream
// for normal storage): per-row significand sums, adjacent-element
// toggles down columns (computed row-pair-wise for locality), total
// Hamming weight, and the non-zero count.
func ScanB(mt *matrix.Matrix) *OperandStats {
	st := &OperandStats{Sig: make([]int64, mt.Rows)}
	tab := sigTab16(mt.DType)
	hmask := bitops.LowMask(mt.DType.Width())
	var prevRow []uint32
	for kk := 0; kk < mt.Rows; kk++ {
		row := mt.Row(kk)
		var rowSig int64
		switch {
		case tab != nil && prevRow == nil:
			for _, b := range row {
				rowSig += int64(tab[b&0xFFFF])
				st.Hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.NonZero++
				}
			}
		case tab != nil:
			for j, b := range row {
				rowSig += int64(tab[b&0xFFFF])
				st.Hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.NonZero++
				}
				st.Toggles += int64(bitops.Toggle32(prevRow[j], b))
			}
		case prevRow == nil:
			for _, b := range row {
				rowSig += int64(softfloat.SigPop32(b))
				st.Hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.NonZero++
				}
			}
		default:
			for j, b := range row {
				rowSig += int64(softfloat.SigPop32(b))
				st.Hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.NonZero++
				}
				st.Toggles += int64(bitops.Toggle32(prevRow[j], b))
			}
		}
		st.Sig[kk] = rowSig
		prevRow = row
	}
	return st
}

// significandFn returns the per-dtype operand→multiplier-significand
// mapping.
func significandFn(dt matrix.DType) func(uint32) uint32 {
	switch dt {
	case matrix.FP32:
		return softfloat.Significand32
	case matrix.FP16, matrix.FP16T:
		return func(b uint32) uint32 { return softfloat.Significand16(uint16(b)) }
	case matrix.BF16T:
		return func(b uint32) uint32 { return softfloat.SignificandBF16(uint16(b)) }
	case matrix.INT8:
		return func(b uint32) uint32 { return softfloat.I8Magnitude(int8(uint8(b))) }
	default:
		panic("activity: unknown dtype")
	}
}

// samplePositions draws `samples` distinct output positions from the
// n×m index space, deterministically for a given seed, via a sparse
// partial Fisher–Yates shuffle (only the touched prefix of the virtual
// index array is materialized in a map). Sampling without replacement
// matters: duplicate positions would skew the scaled Product/Accum
// toggle estimates by double-counting lanes. When the sample covers the
// whole output the enumeration is exhaustive and seed-independent.
func samplePositions(n, m, samples int, seed uint64) [][2]int {
	total := n * m
	positions := make([][2]int, samples)
	if samples == total {
		idx := 0
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				positions[idx] = [2]int{i, j}
				idx++
			}
		}
		return positions
	}
	src := rng.Derive(seed, "activity-samples")
	swapped := make(map[int]int, samples)
	for s := 0; s < samples; s++ {
		r := s + src.Intn(total-s)
		vr, ok := swapped[r]
		if !ok {
			vr = r
		}
		vs, ok := swapped[s]
		if !ok {
			vs = s
		}
		swapped[r] = vs
		positions[s] = [2]int{vr / m, vr % m}
	}
	return positions
}

// sampleWalk measures product-register and accumulator-register toggle
// trajectories on a deterministic sample of distinct output positions,
// walking the exact per-dtype arithmetic along k, and scales the totals
// to the full output. It also accumulates the mean operand bit
// alignment over the sampled multiplied pairs.
//
// Samples are grouped by output column so each B column is gathered
// into a contiguous buffer once and walked for every sampled row in
// that column; the buffer is reused across groups within a worker. The
// final reduction runs over per-sample slots in a fixed order, so the
// result is deterministic regardless of worker scheduling.
func sampleWalk(p *kernels.Problem, cfg Config, r *Report) {
	n, k, m := p.Dims()
	total := n * m
	samples := cfg.SampleOutputs
	if samples > total {
		samples = total
	}
	positions := samplePositions(n, m, samples, cfg.Seed)

	// Order sample indices by output column so consecutive samples share
	// (or neighbor) their B columns, then walk them two at a time:
	// paired lanes have independent accumulator chains, so interleaving
	// them hides the serial add latency. Per-lane trajectories (and
	// hence results) are identical to one-at-a-time walks.
	// Stable counting sort by column (equivalent to ordering by
	// (column, sample index) — sample indices are appended in order).
	colCount := make([]int, m+1)
	for _, pos := range positions {
		colCount[pos[1]+1]++
	}
	for j := 0; j < m; j++ {
		colCount[j+1] += colCount[j]
	}
	order := make([]int, len(positions))
	for s, pos := range positions {
		order[colCount[pos[1]]] = s
		colCount[pos[1]]++
	}

	width := p.DType.Width()
	results := make([]laneResult, len(positions))

	// gather returns operand column j as a contiguous slice: the stored
	// row itself under transposed storage, otherwise a strided copy into
	// buf.
	gather := func(buf []uint32, j int) []uint32 {
		if p.BTransposed {
			return p.B.Row(j)
		}
		for kk := 0; kk < k; kk++ {
			buf[kk] = p.B.At(kk, j)
		}
		return buf
	}

	walkPair := func(buf0, buf1 []uint32, pi int) {
		i := 2 * pi
		s0 := order[i]
		j0 := positions[s0][1]
		b0 := gather(buf0, j0)
		if i+1 == len(order) {
			results[s0] = walkLane(p.DType, p.A.Row(positions[s0][0]), b0, width)
			return
		}
		s1 := order[i+1]
		b1 := b0
		if j1 := positions[s1][1]; j1 != j0 {
			b1 = gather(buf1, j1)
		}
		results[s0], results[s1] = walkLane2(p.DType,
			p.A.Row(positions[s0][0]), b0, p.A.Row(positions[s1][0]), b1, width)
	}

	pairs := (len(order) + 1) / 2
	workers := runtime.GOMAXPROCS(0)
	if workers > pairs {
		workers = pairs
	}
	if workers <= 1 {
		buf0 := make([]uint32, k)
		buf1 := make([]uint32, k)
		for pi := 0; pi < pairs; pi++ {
			walkPair(buf0, buf1, pi)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf0 := make([]uint32, k)
				buf1 := make([]uint32, k)
				for {
					pi := int(next.Add(1)) - 1
					if pi >= pairs {
						return
					}
					walkPair(buf0, buf1, pi)
				}
			}()
		}
		wg.Wait()
	}

	var prodTog, accTog int64
	var alignSum float64
	for _, res := range results {
		prodTog += res.prodTog
		accTog += res.accTog
		alignSum += res.alignSum
	}
	if len(positions) > 0 {
		scale := float64(total) / float64(len(positions))
		r.ProductToggles = float64(prodTog) * scale
		r.AccumToggles = float64(accTog) * scale
		r.MeanAlignment = alignSum / float64(int64(len(positions))*int64(k))
	}
}

// laneResult is one sampled output lane's walk outcome.
type laneResult struct {
	prodTog, accTog int64
	alignSum        float64
}

// laneAlign converts a lane's accumulated misalignment popcount into the
// alignment sum Σ_k (1 - pc_k/width). Every per-step alignment is an
// exact multiple of 1/width (width is a power of two), so the integer
// accumulation followed by one division is bit-identical to the
// step-by-step float sum.
func laneAlign(k, width int, pc int64) float64 {
	return float64(int64(k)*int64(width)-pc) / float64(width)
}

// walkLane runs one output lane's exact arithmetic and counts register
// toggles plus operand alignment.
func walkLane(dt matrix.DType, aRow, bCol []uint32, width int) laneResult {
	k := len(aRow)
	var prodTog, accTog, alignPC int64
	amask := bitops.LowMask(width)
	switch dt {
	case matrix.FP32:
		var acc float32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			a := softfloat.F32FromBits(aRow[kk])
			b := softfloat.F32FromBits(bCol[kk])
			prod := a * b
			pb := math.Float32bits(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := math.Float32bits(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignPC += int64(bitops.Popcount32((aRow[kk] ^ bCol[kk]) & amask))
		}
	case matrix.FP16:
		var acc uint16
		var prevProd, prevAcc uint16
		for kk := 0; kk < k; kk++ {
			prod := softfloat.Mul16(uint16(aRow[kk]), uint16(bCol[kk]))
			prodTog += int64(bitops.Toggle16(prevProd, prod))
			prevProd = prod
			acc = softfloat.Add16(acc, prod)
			accTog += int64(bitops.Toggle16(prevAcc, acc))
			prevAcc = acc
			alignPC += int64(bitops.Popcount32((aRow[kk] ^ bCol[kk]) & amask))
		}
	case matrix.FP16T:
		var acc float32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			prod := softfloat.F16ToF32(uint16(aRow[kk])) * softfloat.F16ToF32(uint16(bCol[kk]))
			pb := math.Float32bits(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := math.Float32bits(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignPC += int64(bitops.Popcount32((aRow[kk] ^ bCol[kk]) & amask))
		}
	case matrix.BF16T:
		var acc float32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			prod := softfloat.BF16ToF32(uint16(aRow[kk])) * softfloat.BF16ToF32(uint16(bCol[kk]))
			pb := math.Float32bits(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := math.Float32bits(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignPC += int64(bitops.Popcount32((aRow[kk] ^ bCol[kk]) & amask))
		}
	case matrix.INT8:
		var acc int32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			prod := int32(int8(uint8(aRow[kk]))) * int32(int8(uint8(bCol[kk])))
			pb := uint32(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := uint32(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignPC += int64(bitops.Popcount32((aRow[kk] ^ bCol[kk]) & amask))
		}
	default:
		panic("activity: unknown dtype")
	}
	return laneResult{prodTog: prodTog, accTog: accTog, alignSum: laneAlign(k, width, alignPC)}
}

// walkLane2 walks two output lanes in one interleaved pass. Each
// lane's product/accumulator trajectory is the exact sequence walkLane
// would produce — the chains are independent — so the two results are
// bit-identical to separate walks, but the interleaving overlaps the
// serial accumulator latency of one lane with the other's. The lanes
// may consume the same or different B columns.
func walkLane2(dt matrix.DType, aRow0, bCol0, aRow1, bCol1 []uint32, width int) (laneResult, laneResult) {
	k := len(bCol0)
	var prodTog0, accTog0, alignPC0 int64
	var prodTog1, accTog1, alignPC1 int64
	amask := bitops.LowMask(width)
	switch dt {
	case matrix.FP32:
		var acc0, acc1 float32
		var prevProd0, prevAcc0, prevProd1, prevAcc1 uint32
		for kk := 0; kk < k; kk++ {
			bb0, bb1 := bCol0[kk], bCol1[kk]
			a0, a1 := aRow0[kk], aRow1[kk]
			pb0 := math.Float32bits(softfloat.F32FromBits(a0) * softfloat.F32FromBits(bb0))
			pb1 := math.Float32bits(softfloat.F32FromBits(a1) * softfloat.F32FromBits(bb1))
			prodTog0 += int64(bitops.Toggle32(prevProd0, pb0))
			prodTog1 += int64(bitops.Toggle32(prevProd1, pb1))
			prevProd0, prevProd1 = pb0, pb1
			acc0 += softfloat.F32FromBits(pb0)
			acc1 += softfloat.F32FromBits(pb1)
			ab0 := math.Float32bits(acc0)
			ab1 := math.Float32bits(acc1)
			accTog0 += int64(bitops.Toggle32(prevAcc0, ab0))
			accTog1 += int64(bitops.Toggle32(prevAcc1, ab1))
			prevAcc0, prevAcc1 = ab0, ab1
			alignPC0 += int64(bitops.Popcount32((a0 ^ bb0) & amask))
			alignPC1 += int64(bitops.Popcount32((a1 ^ bb1) & amask))
		}
	case matrix.FP16:
		var acc0, acc1 uint16
		var prevProd0, prevAcc0, prevProd1, prevAcc1 uint16
		for kk := 0; kk < k; kk++ {
			bb0, bb1 := bCol0[kk], bCol1[kk]
			a0, a1 := aRow0[kk], aRow1[kk]
			prod0 := softfloat.Mul16(uint16(a0), uint16(bb0))
			prod1 := softfloat.Mul16(uint16(a1), uint16(bb1))
			prodTog0 += int64(bitops.Toggle16(prevProd0, prod0))
			prodTog1 += int64(bitops.Toggle16(prevProd1, prod1))
			prevProd0, prevProd1 = prod0, prod1
			acc0 = softfloat.Add16(acc0, prod0)
			acc1 = softfloat.Add16(acc1, prod1)
			accTog0 += int64(bitops.Toggle16(prevAcc0, acc0))
			accTog1 += int64(bitops.Toggle16(prevAcc1, acc1))
			prevAcc0, prevAcc1 = acc0, acc1
			alignPC0 += int64(bitops.Popcount32((a0 ^ bb0) & amask))
			alignPC1 += int64(bitops.Popcount32((a1 ^ bb1) & amask))
		}
	case matrix.FP16T:
		var acc0, acc1 float32
		var prevProd0, prevAcc0, prevProd1, prevAcc1 uint32
		for kk := 0; kk < k; kk++ {
			bb0, bb1 := bCol0[kk], bCol1[kk]
			a0, a1 := aRow0[kk], aRow1[kk]
			pb0 := math.Float32bits(softfloat.F16ToF32(uint16(a0)) * softfloat.F16ToF32(uint16(bb0)))
			pb1 := math.Float32bits(softfloat.F16ToF32(uint16(a1)) * softfloat.F16ToF32(uint16(bb1)))
			prodTog0 += int64(bitops.Toggle32(prevProd0, pb0))
			prodTog1 += int64(bitops.Toggle32(prevProd1, pb1))
			prevProd0, prevProd1 = pb0, pb1
			acc0 += softfloat.F32FromBits(pb0)
			acc1 += softfloat.F32FromBits(pb1)
			ab0 := math.Float32bits(acc0)
			ab1 := math.Float32bits(acc1)
			accTog0 += int64(bitops.Toggle32(prevAcc0, ab0))
			accTog1 += int64(bitops.Toggle32(prevAcc1, ab1))
			prevAcc0, prevAcc1 = ab0, ab1
			alignPC0 += int64(bitops.Popcount32((a0 ^ bb0) & amask))
			alignPC1 += int64(bitops.Popcount32((a1 ^ bb1) & amask))
		}
	case matrix.BF16T:
		var acc0, acc1 float32
		var prevProd0, prevAcc0, prevProd1, prevAcc1 uint32
		for kk := 0; kk < k; kk++ {
			bb0, bb1 := bCol0[kk], bCol1[kk]
			a0, a1 := aRow0[kk], aRow1[kk]
			pb0 := math.Float32bits(softfloat.BF16ToF32(uint16(a0)) * softfloat.BF16ToF32(uint16(bb0)))
			pb1 := math.Float32bits(softfloat.BF16ToF32(uint16(a1)) * softfloat.BF16ToF32(uint16(bb1)))
			prodTog0 += int64(bitops.Toggle32(prevProd0, pb0))
			prodTog1 += int64(bitops.Toggle32(prevProd1, pb1))
			prevProd0, prevProd1 = pb0, pb1
			acc0 += softfloat.F32FromBits(pb0)
			acc1 += softfloat.F32FromBits(pb1)
			ab0 := math.Float32bits(acc0)
			ab1 := math.Float32bits(acc1)
			accTog0 += int64(bitops.Toggle32(prevAcc0, ab0))
			accTog1 += int64(bitops.Toggle32(prevAcc1, ab1))
			prevAcc0, prevAcc1 = ab0, ab1
			alignPC0 += int64(bitops.Popcount32((a0 ^ bb0) & amask))
			alignPC1 += int64(bitops.Popcount32((a1 ^ bb1) & amask))
		}
	case matrix.INT8:
		var acc0, acc1 int32
		var prevProd0, prevAcc0, prevProd1, prevAcc1 uint32
		for kk := 0; kk < k; kk++ {
			bb0, bb1 := bCol0[kk], bCol1[kk]
			a0, a1 := aRow0[kk], aRow1[kk]
			pb0 := uint32(int32(int8(uint8(a0))) * int32(int8(uint8(bb0))))
			pb1 := uint32(int32(int8(uint8(a1))) * int32(int8(uint8(bb1))))
			prodTog0 += int64(bitops.Toggle32(prevProd0, pb0))
			prodTog1 += int64(bitops.Toggle32(prevProd1, pb1))
			prevProd0, prevProd1 = pb0, pb1
			acc0 += int32(pb0)
			acc1 += int32(pb1)
			ab0 := uint32(acc0)
			ab1 := uint32(acc1)
			accTog0 += int64(bitops.Toggle32(prevAcc0, ab0))
			accTog1 += int64(bitops.Toggle32(prevAcc1, ab1))
			prevAcc0, prevAcc1 = ab0, ab1
			alignPC0 += int64(bitops.Popcount32((a0 ^ bb0) & amask))
			alignPC1 += int64(bitops.Popcount32((a1 ^ bb1) & amask))
		}
	default:
		panic("activity: unknown dtype")
	}
	return laneResult{prodTog: prodTog0, accTog: accTog0, alignSum: laneAlign(k, width, alignPC0)},
		laneResult{prodTog: prodTog1, accTog: accTog1, alignSum: laneAlign(k, width, alignPC1)}
}
