// Package activity extracts the switching-activity profile of a GEMM
// execution from its input matrices — the quantity the paper
// hypothesizes GPU power actually depends on (§V: bit flips during
// computation and the number of set bits).
//
// For D = A·B with A:(N,K) and B:(K,M) in operand layout, the per-lane
// datapath of the kernel consumes, for output element (i,j), the stream
// A[i,0..K-1] against B[0..K-1,j]. The total activity decomposes into:
//
//   - Operand toggles — bits flipped at the FMA/MMA input latches
//     between consecutive k-iterations. Exact in O(NK+KM):
//     Σ_{i,j,k} tog(A[i,k],A[i,k+1]) = M·Σ_{i,k} tog(A[i,k],A[i,k+1]),
//     and symmetrically N·(column toggles of B).
//   - Multiplier partial products — HW(sig(a))·HW(sig(b)) array cells
//     active per MAC, with zero operands gating the array. Exact in
//     O(NK+KM) because Σ_{i,j,k} g(a)h(b) = Σ_k (Σ_i g)(Σ_j h).
//   - Stream toggles — bus activity of staging A and B tiles through
//     DRAM/L2/shared memory, the row/column toggle sums scaled by the
//     tile reuse factors of the CUTLASS-style tiling.
//   - Product and accumulator toggles — register flips between
//     consecutive products and partial sums. These depend on the actual
//     arithmetic trajectory, so they are measured on a deterministic
//     sample of output positions (exact dtype arithmetic along k) and
//     scaled to the full output.
//
// The report also carries the paper's Fig. 8 statistics: mean bit
// alignment between multiplied operand pairs and mean Hamming weights.
package activity

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/bitops"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/softfloat"
)

// Config controls activity extraction.
type Config struct {
	// Tile is the threadblock tiling, which sets the stream reuse
	// factors. Zero value means the dtype default.
	Tile kernels.TileConfig
	// SampleOutputs is the number of output positions whose product and
	// accumulator trajectories are walked exactly. Zero means the
	// default of 512. Samples are deterministic given Seed.
	SampleOutputs int
	// Seed drives sample-position selection. Experiments share a fixed
	// seed so that configurations differ only in their inputs.
	Seed uint64
}

// DefaultSampleOutputs is the default number of sampled accumulator
// trajectories.
const DefaultSampleOutputs = 512

// Report is the switching-activity profile of one GEMM iteration.
// Toggle and partial-product counts are totals over the whole iteration.
type Report struct {
	MACs int64

	// Exact terms.
	OperandToggles int64 // operand-latch bit flips, A-side + B-side
	MultPPUnits    int64 // Σ HW(sig a)·HW(sig b) over all MACs
	StreamToggles  int64 // memory-hierarchy bus bit flips incl. reuse

	// Sampled terms, scaled to the full iteration.
	ProductToggles float64 // multiplier output register bit flips
	AccumToggles   float64 // accumulator register bit flips

	// Fig. 8 statistics.
	MeanAlignment float64 // mean bit alignment of multiplied pairs
	MeanHammingA  float64 // mean Hamming weight per element of A
	MeanHammingB  float64
	NonZeroFrac   float64 // fraction of MACs with both operands non-zero
}

// PerMAC returns the report normalized per multiply-accumulate.
type PerMAC struct {
	OperandToggles float64
	MultPPUnits    float64
	StreamToggles  float64
	ProductToggles float64
	AccumToggles   float64
}

// PerMAC normalizes the totals by the MAC count.
func (r *Report) PerMAC() PerMAC {
	if r.MACs == 0 {
		return PerMAC{}
	}
	n := float64(r.MACs)
	return PerMAC{
		OperandToggles: float64(r.OperandToggles) / n,
		MultPPUnits:    float64(r.MultPPUnits) / n,
		StreamToggles:  float64(r.StreamToggles) / n,
		ProductToggles: r.ProductToggles / n,
		AccumToggles:   r.AccumToggles / n,
	}
}

// Analyze extracts the activity report for the problem. A and B must be
// in operand layout (B already transposed if the experiment transposes
// it).
func Analyze(p *kernels.Problem, cfg Config) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tile == (kernels.TileConfig{}) {
		cfg.Tile = p.Tile
	}
	if cfg.SampleOutputs <= 0 {
		cfg.SampleOutputs = DefaultSampleOutputs
	}

	n, k, m := p.Dims()
	r := &Report{MACs: p.MACs()}

	var wg sync.WaitGroup
	var aRowToggles, bColToggles int64
	var ppUnits int64
	var hwA, hwB float64
	var zeroA, zeroB float64
	sigA := make([]int64, k) // Σ_i HW(sig A[i,kk]) per k-slice
	sigB := make([]int64, k) // Σ_j HW(sig B[kk,j]) per k-slice

	wg.Add(4)
	go func() {
		defer wg.Done()
		aRowToggles = rowToggleSum(p.A)
	}()
	go func() {
		defer wg.Done()
		bColToggles = colToggleSum(p.B)
	}()
	go func() {
		defer wg.Done()
		sigSumsByCol(p.A, sigA)
		hwA = p.A.MeanHammingWeight()
		zeroA = 1 - p.A.NonZeroFraction()
	}()
	go func() {
		defer wg.Done()
		sigSumsByRow(p.B, sigB)
		hwB = p.B.MeanHammingWeight()
		zeroB = 1 - p.B.NonZeroFraction()
	}()
	wg.Wait()

	for kk := 0; kk < k; kk++ {
		ppUnits += sigA[kk] * sigB[kk]
	}

	r.OperandToggles = int64(m)*aRowToggles + int64(n)*bColToggles
	r.MultPPUnits = ppUnits
	r.MeanHammingA = hwA
	r.MeanHammingB = hwB
	// Independent placement approximation for the gating fraction; the
	// sampled walk refines alignment but the zero fractions are exact.
	r.NonZeroFrac = (1 - zeroA) * (1 - zeroB)

	// Stream toggles: each A tile row panel is re-streamed once per
	// column block of the output, each B panel once per row block.
	reuseA := int64(ceilDiv(m, cfg.Tile.BlockN))
	reuseB := int64(ceilDiv(n, cfg.Tile.BlockM))
	r.StreamToggles = reuseA*aRowToggles + reuseB*bColToggles

	sampleWalk(p, cfg, r)
	return r, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// rowToggleSum returns Σ over rows of adjacent-element toggle counts,
// parallel across row blocks.
func rowToggleSum(mt *matrix.Matrix) int64 {
	var total int64
	parallelReduce(mt.Rows, func(lo, hi int) int64 {
		var sum int64
		for i := lo; i < hi; i++ {
			sum += bitops.ToggleSum32(mt.Row(i))
		}
		return sum
	}, &total)
	return total
}

// colToggleSum returns Σ over columns of adjacent-element toggle counts
// along the row (k) direction, computed row-pair-wise for locality.
func colToggleSum(mt *matrix.Matrix) int64 {
	var total int64
	if mt.Rows < 2 {
		return 0
	}
	parallelReduce(mt.Rows-1, func(lo, hi int) int64 {
		var sum int64
		for i := lo; i < hi; i++ {
			cur := mt.Row(i)
			next := mt.Row(i + 1)
			for j := range cur {
				sum += int64(bitops.Toggle32(cur[j], next[j]))
			}
		}
		return sum
	}, &total)
	return total
}

// sigSumsByCol accumulates Σ_i HW(sig(A[i,kk])) into out[kk].
func sigSumsByCol(mt *matrix.Matrix, out []int64) {
	sig := significandFn(mt.DType)
	for i := 0; i < mt.Rows; i++ {
		row := mt.Row(i)
		for kk, b := range row {
			out[kk] += int64(bitops.Popcount32(sig(b)))
		}
	}
}

// sigSumsByRow accumulates Σ_j HW(sig(B[kk,j])) into out[kk].
func sigSumsByRow(mt *matrix.Matrix, out []int64) {
	sig := significandFn(mt.DType)
	for kk := 0; kk < mt.Rows; kk++ {
		row := mt.Row(kk)
		var sum int64
		for _, b := range row {
			sum += int64(bitops.Popcount32(sig(b)))
		}
		out[kk] = sum
	}
}

// significandFn returns the per-dtype operand→multiplier-significand
// mapping.
func significandFn(dt matrix.DType) func(uint32) uint32 {
	switch dt {
	case matrix.FP32:
		return softfloat.Significand32
	case matrix.FP16, matrix.FP16T:
		return func(b uint32) uint32 { return softfloat.Significand16(uint16(b)) }
	case matrix.BF16T:
		return func(b uint32) uint32 { return softfloat.SignificandBF16(uint16(b)) }
	case matrix.INT8:
		return func(b uint32) uint32 { return softfloat.I8Magnitude(int8(uint8(b))) }
	default:
		panic("activity: unknown dtype")
	}
}

// parallelReduce splits [0,n) into per-worker blocks, sums f over each,
// and stores the grand total.
func parallelReduce(n int, f func(lo, hi int) int64, out *int64) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		*out = f(0, n)
		return
	}
	partial := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partial[w] = f(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, p := range partial {
		total += p
	}
	*out = total
}

// sampleWalk measures product-register and accumulator-register toggle
// trajectories on a deterministic sample of output positions, walking
// the exact per-dtype arithmetic along k, and scales the totals to the
// full output. It also accumulates the mean operand bit alignment over
// the sampled multiplied pairs.
func sampleWalk(p *kernels.Problem, cfg Config, r *Report) {
	n, k, m := p.Dims()
	total := n * m
	samples := cfg.SampleOutputs
	if samples > total {
		samples = total
	}
	src := rng.Derive(cfg.Seed, "activity-samples")
	positions := make([][2]int, samples)
	if samples == total {
		idx := 0
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				positions[idx] = [2]int{i, j}
				idx++
			}
		}
	} else {
		for s := range positions {
			positions[s] = [2]int{src.Intn(n), src.Intn(m)}
		}
	}

	width := p.DType.Width()
	type walkResult struct {
		prodTog, accTog int64
		alignSum        float64
	}
	results := make([]walkResult, len(positions))

	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(positions) {
		workers = len(positions)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bCol := make([]uint32, k)
			for s := range jobs {
				i, j := positions[s][0], positions[s][1]
				aRow := p.A.Row(i)
				for kk := 0; kk < k; kk++ {
					bCol[kk] = p.B.At(kk, j)
				}
				pt, at, al := walkLane(p.DType, aRow, bCol, width)
				results[s] = walkResult{prodTog: pt, accTog: at, alignSum: al}
			}
		}()
	}
	for s := range positions {
		jobs <- s
	}
	close(jobs)
	wg.Wait()

	var prodTog, accTog int64
	var alignSum float64
	for _, res := range results {
		prodTog += res.prodTog
		accTog += res.accTog
		alignSum += res.alignSum
	}
	if len(positions) > 0 {
		scale := float64(total) / float64(len(positions))
		r.ProductToggles = float64(prodTog) * scale
		r.AccumToggles = float64(accTog) * scale
		r.MeanAlignment = alignSum / float64(int64(len(positions))*int64(k))
	}
}

// walkLane runs one output lane's exact arithmetic and counts register
// toggles plus operand alignment.
func walkLane(dt matrix.DType, aRow, bCol []uint32, width int) (prodTog, accTog int64, alignSum float64) {
	k := len(aRow)
	switch dt {
	case matrix.FP32:
		var acc float32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			a := softfloat.F32FromBits(aRow[kk])
			b := softfloat.F32FromBits(bCol[kk])
			prod := a * b
			pb := math.Float32bits(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := math.Float32bits(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignSum += bitops.Alignment(aRow[kk], bCol[kk], width)
		}
	case matrix.FP16:
		var acc uint16
		var prevProd, prevAcc uint16
		for kk := 0; kk < k; kk++ {
			prod := softfloat.Mul16(uint16(aRow[kk]), uint16(bCol[kk]))
			prodTog += int64(bitops.Toggle16(prevProd, prod))
			prevProd = prod
			acc = softfloat.Add16(acc, prod)
			accTog += int64(bitops.Toggle16(prevAcc, acc))
			prevAcc = acc
			alignSum += bitops.Alignment(aRow[kk], bCol[kk], width)
		}
	case matrix.FP16T:
		var acc float32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			prod := softfloat.F16ToF32(uint16(aRow[kk])) * softfloat.F16ToF32(uint16(bCol[kk]))
			pb := math.Float32bits(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := math.Float32bits(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignSum += bitops.Alignment(aRow[kk], bCol[kk], width)
		}
	case matrix.BF16T:
		var acc float32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			prod := softfloat.BF16ToF32(uint16(aRow[kk])) * softfloat.BF16ToF32(uint16(bCol[kk]))
			pb := math.Float32bits(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := math.Float32bits(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignSum += bitops.Alignment(aRow[kk], bCol[kk], width)
		}
	case matrix.INT8:
		var acc int32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			prod := int32(int8(uint8(aRow[kk]))) * int32(int8(uint8(bCol[kk])))
			pb := uint32(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := uint32(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignSum += bitops.Alignment(aRow[kk], bCol[kk], width)
		}
	default:
		panic("activity: unknown dtype")
	}
	return prodTog, accTog, alignSum
}
