// Package activity extracts the switching-activity profile of a GEMM
// execution from its input matrices — the quantity the paper
// hypothesizes GPU power actually depends on (§V: bit flips during
// computation and the number of set bits).
//
// For D = A·B with A:(N,K) and B:(K,M) in operand layout, the per-lane
// datapath of the kernel consumes, for output element (i,j), the stream
// A[i,0..K-1] against B[0..K-1,j]. The total activity decomposes into:
//
//   - Operand toggles — bits flipped at the FMA/MMA input latches
//     between consecutive k-iterations. Exact in O(NK+KM):
//     Σ_{i,j,k} tog(A[i,k],A[i,k+1]) = M·Σ_{i,k} tog(A[i,k],A[i,k+1]),
//     and symmetrically N·(column toggles of B).
//   - Multiplier partial products — HW(sig(a))·HW(sig(b)) array cells
//     active per MAC, with zero operands gating the array. Exact in
//     O(NK+KM) because Σ_{i,j,k} g(a)h(b) = Σ_k (Σ_i g)(Σ_j h).
//   - Stream toggles — bus activity of staging A and B tiles through
//     DRAM/L2/shared memory, the row/column toggle sums scaled by the
//     tile reuse factors of the CUTLASS-style tiling.
//   - Product and accumulator toggles — register flips between
//     consecutive products and partial sums. These depend on the actual
//     arithmetic trajectory, so they are measured on a deterministic
//     sample of output positions (exact dtype arithmetic along k) and
//     scaled to the full output.
//
// The report also carries the paper's Fig. 8 statistics: mean bit
// alignment between multiplied operand pairs and mean Hamming weights.
package activity

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitops"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/softfloat"
)

// Config controls activity extraction.
type Config struct {
	// Tile is the threadblock tiling, which sets the stream reuse
	// factors. Zero value means the dtype default.
	Tile kernels.TileConfig
	// SampleOutputs is the number of distinct output positions whose
	// product and accumulator trajectories are walked exactly. Zero
	// means the default of 512. Positions are drawn without replacement
	// (a partial Fisher–Yates over the output index space) and are
	// deterministic given Seed.
	SampleOutputs int
	// Seed drives sample-position selection. Experiments share a fixed
	// seed so that configurations differ only in their inputs.
	Seed uint64
}

// DefaultSampleOutputs is the default number of sampled accumulator
// trajectories.
const DefaultSampleOutputs = 512

// Report is the switching-activity profile of one GEMM iteration.
// Toggle and partial-product counts are totals over the whole iteration.
type Report struct {
	MACs int64

	// Exact terms.
	OperandToggles int64 // operand-latch bit flips, A-side + B-side
	MultPPUnits    int64 // Σ HW(sig a)·HW(sig b) over all MACs
	StreamToggles  int64 // memory-hierarchy bus bit flips incl. reuse

	// Sampled terms, scaled to the full iteration.
	ProductToggles float64 // multiplier output register bit flips
	AccumToggles   float64 // accumulator register bit flips

	// Fig. 8 statistics.
	MeanAlignment float64 // mean bit alignment of multiplied pairs
	MeanHammingA  float64 // mean Hamming weight per element of A
	MeanHammingB  float64
	NonZeroFrac   float64 // fraction of MACs with both operands non-zero
}

// PerMAC returns the report normalized per multiply-accumulate.
type PerMAC struct {
	OperandToggles float64
	MultPPUnits    float64
	StreamToggles  float64
	ProductToggles float64
	AccumToggles   float64
}

// PerMAC normalizes the totals by the MAC count.
func (r *Report) PerMAC() PerMAC {
	if r.MACs == 0 {
		return PerMAC{}
	}
	n := float64(r.MACs)
	return PerMAC{
		OperandToggles: float64(r.OperandToggles) / n,
		MultPPUnits:    float64(r.MultPPUnits) / n,
		StreamToggles:  float64(r.StreamToggles) / n,
		ProductToggles: r.ProductToggles / n,
		AccumToggles:   r.AccumToggles / n,
	}
}

// Analyze extracts the activity report for the problem. A and B must be
// in operand layout (B already transposed if the experiment transposes
// it).
func Analyze(p *kernels.Problem, cfg Config) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tile == (kernels.TileConfig{}) {
		cfg.Tile = p.Tile
	}
	if cfg.SampleOutputs <= 0 {
		cfg.SampleOutputs = DefaultSampleOutputs
	}

	n, k, m := p.Dims()
	r := &Report{MACs: p.MACs()}

	// One fused pass per operand computes every exact term at once —
	// toggles, per-k-slice significand sums, Hamming weight, non-zero
	// count — instead of re-streaming each matrix once per statistic.
	sigA := make([]int64, k) // Σ_i HW(sig A[i,kk]) per k-slice
	sigB := make([]int64, k) // Σ_j HW(sig B[kk,j]) per k-slice
	var statsA, statsB operandStats
	if runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			statsA = scanA(p.A, sigA)
		}()
		statsB = scanB(p.B, sigB)
		wg.Wait()
	} else {
		statsA = scanA(p.A, sigA)
		statsB = scanB(p.B, sigB)
	}

	var ppUnits int64
	for kk := 0; kk < k; kk++ {
		ppUnits += sigA[kk] * sigB[kk]
	}

	aRowToggles := statsA.toggles
	bColToggles := statsB.toggles
	r.OperandToggles = int64(m)*aRowToggles + int64(n)*bColToggles
	r.MultPPUnits = ppUnits
	r.MeanHammingA = float64(statsA.hamming) / float64(len(p.A.Bits))
	r.MeanHammingB = float64(statsB.hamming) / float64(len(p.B.Bits))
	// Independent placement approximation for the gating fraction; the
	// sampled walk refines alignment but the zero fractions are exact.
	nzA := float64(statsA.nonZero) / float64(len(p.A.Bits))
	nzB := float64(statsB.nonZero) / float64(len(p.B.Bits))
	r.NonZeroFrac = nzA * nzB

	// Stream toggles: each A tile row panel is re-streamed once per
	// column block of the output, each B panel once per row block.
	reuseA := int64(ceilDiv(m, cfg.Tile.BlockN))
	reuseB := int64(ceilDiv(n, cfg.Tile.BlockM))
	r.StreamToggles = reuseA*aRowToggles + reuseB*bColToggles

	sampleWalk(p, cfg, r)
	return r, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// operandStats are the per-operand exact aggregates of one fused scan.
type operandStats struct {
	toggles int64 // adjacent toggles along the operand's k stream
	hamming int64 // total Hamming weight over the lane width
	nonZero int64 // elements with a non-zero bit pattern
}

// sigTab16 returns the per-dtype significand-weight table for the
// lanes that fit a 16-bit index, or nil for FP32 (which computes its
// weight inline). Table indexing keeps the scan loops free of
// per-element indirect calls.
func sigTab16(dt matrix.DType) *[1 << 16]uint8 {
	switch dt {
	case matrix.FP16, matrix.FP16T:
		return softfloat.SigPop16Table()
	case matrix.BF16T:
		return softfloat.SigPopBF16Table()
	case matrix.INT8:
		return softfloat.MagPopI8WideTable()
	default:
		return nil
	}
}

// scanA streams A row-major once, accumulating per-column significand
// sums into sig, adjacent-element toggles along rows (the A-side
// operand stream), total Hamming weight, and the non-zero count.
func scanA(mt *matrix.Matrix, sig []int64) operandStats {
	var st operandStats
	tab := sigTab16(mt.DType)
	hmask := bitops.LowMask(mt.DType.Width())
	for i := 0; i < mt.Rows; i++ {
		row := mt.Row(i)
		var prev uint32
		if tab != nil {
			for kk, b := range row {
				sig[kk] += int64(tab[b&0xFFFF])
				st.hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.nonZero++
				}
				if kk > 0 {
					st.toggles += int64(bitops.Toggle32(prev, b))
				}
				prev = b
			}
		} else {
			for kk, b := range row {
				sig[kk] += int64(softfloat.SigPop32(b))
				st.hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.nonZero++
				}
				if kk > 0 {
					st.toggles += int64(bitops.Toggle32(prev, b))
				}
				prev = b
			}
		}
	}
	return st
}

// scanB streams B row-major once, accumulating per-row significand
// sums into sig, adjacent-element toggles down columns (the B-side
// operand stream, computed row-pair-wise for locality), total Hamming
// weight, and the non-zero count.
func scanB(mt *matrix.Matrix, sig []int64) operandStats {
	var st operandStats
	tab := sigTab16(mt.DType)
	hmask := bitops.LowMask(mt.DType.Width())
	var prevRow []uint32
	for kk := 0; kk < mt.Rows; kk++ {
		row := mt.Row(kk)
		var rowSig int64
		switch {
		case tab != nil && prevRow == nil:
			for _, b := range row {
				rowSig += int64(tab[b&0xFFFF])
				st.hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.nonZero++
				}
			}
		case tab != nil:
			for j, b := range row {
				rowSig += int64(tab[b&0xFFFF])
				st.hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.nonZero++
				}
				st.toggles += int64(bitops.Toggle32(prevRow[j], b))
			}
		case prevRow == nil:
			for _, b := range row {
				rowSig += int64(softfloat.SigPop32(b))
				st.hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.nonZero++
				}
			}
		default:
			for j, b := range row {
				rowSig += int64(softfloat.SigPop32(b))
				st.hamming += int64(bitops.Popcount32(b & hmask))
				if b != 0 {
					st.nonZero++
				}
				st.toggles += int64(bitops.Toggle32(prevRow[j], b))
			}
		}
		sig[kk] = rowSig
		prevRow = row
	}
	return st
}

// significandFn returns the per-dtype operand→multiplier-significand
// mapping.
func significandFn(dt matrix.DType) func(uint32) uint32 {
	switch dt {
	case matrix.FP32:
		return softfloat.Significand32
	case matrix.FP16, matrix.FP16T:
		return func(b uint32) uint32 { return softfloat.Significand16(uint16(b)) }
	case matrix.BF16T:
		return func(b uint32) uint32 { return softfloat.SignificandBF16(uint16(b)) }
	case matrix.INT8:
		return func(b uint32) uint32 { return softfloat.I8Magnitude(int8(uint8(b))) }
	default:
		panic("activity: unknown dtype")
	}
}

// samplePositions draws `samples` distinct output positions from the
// n×m index space, deterministically for a given seed, via a sparse
// partial Fisher–Yates shuffle (only the touched prefix of the virtual
// index array is materialized in a map). Sampling without replacement
// matters: duplicate positions would skew the scaled Product/Accum
// toggle estimates by double-counting lanes. When the sample covers the
// whole output the enumeration is exhaustive and seed-independent.
func samplePositions(n, m, samples int, seed uint64) [][2]int {
	total := n * m
	positions := make([][2]int, samples)
	if samples == total {
		idx := 0
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				positions[idx] = [2]int{i, j}
				idx++
			}
		}
		return positions
	}
	src := rng.Derive(seed, "activity-samples")
	swapped := make(map[int]int, samples)
	for s := 0; s < samples; s++ {
		r := s + src.Intn(total-s)
		vr, ok := swapped[r]
		if !ok {
			vr = r
		}
		vs, ok := swapped[s]
		if !ok {
			vs = s
		}
		swapped[r] = vs
		positions[s] = [2]int{vr / m, vr % m}
	}
	return positions
}

// sampleWalk measures product-register and accumulator-register toggle
// trajectories on a deterministic sample of distinct output positions,
// walking the exact per-dtype arithmetic along k, and scales the totals
// to the full output. It also accumulates the mean operand bit
// alignment over the sampled multiplied pairs.
//
// Samples are grouped by output column so each B column is gathered
// into a contiguous buffer once and walked for every sampled row in
// that column; the buffer is reused across groups within a worker. The
// final reduction runs over per-sample slots in a fixed order, so the
// result is deterministic regardless of worker scheduling.
func sampleWalk(p *kernels.Problem, cfg Config, r *Report) {
	n, k, m := p.Dims()
	total := n * m
	samples := cfg.SampleOutputs
	if samples > total {
		samples = total
	}
	positions := samplePositions(n, m, samples, cfg.Seed)

	// Group sample indices by output column, columns in ascending order.
	byCol := make(map[int][]int)
	for s, pos := range positions {
		byCol[pos[1]] = append(byCol[pos[1]], s)
	}
	cols := make([]int, 0, len(byCol))
	for j := range byCol {
		cols = append(cols, j)
	}
	sort.Ints(cols)

	width := p.DType.Width()
	type walkResult struct {
		prodTog, accTog int64
		alignSum        float64
	}
	results := make([]walkResult, len(positions))

	walkGroup := func(bCol []uint32, j int) {
		for kk := 0; kk < k; kk++ {
			bCol[kk] = p.B.At(kk, j)
		}
		for _, s := range byCol[j] {
			pt, at, al := walkLane(p.DType, p.A.Row(positions[s][0]), bCol, width)
			results[s] = walkResult{prodTog: pt, accTog: at, alignSum: al}
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(cols) {
		workers = len(cols)
	}
	if workers <= 1 {
		bCol := make([]uint32, k)
		for _, j := range cols {
			walkGroup(bCol, j)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				bCol := make([]uint32, k)
				for {
					c := int(next.Add(1)) - 1
					if c >= len(cols) {
						return
					}
					walkGroup(bCol, cols[c])
				}
			}()
		}
		wg.Wait()
	}

	var prodTog, accTog int64
	var alignSum float64
	for _, res := range results {
		prodTog += res.prodTog
		accTog += res.accTog
		alignSum += res.alignSum
	}
	if len(positions) > 0 {
		scale := float64(total) / float64(len(positions))
		r.ProductToggles = float64(prodTog) * scale
		r.AccumToggles = float64(accTog) * scale
		r.MeanAlignment = alignSum / float64(int64(len(positions))*int64(k))
	}
}

// walkLane runs one output lane's exact arithmetic and counts register
// toggles plus operand alignment.
func walkLane(dt matrix.DType, aRow, bCol []uint32, width int) (prodTog, accTog int64, alignSum float64) {
	k := len(aRow)
	switch dt {
	case matrix.FP32:
		var acc float32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			a := softfloat.F32FromBits(aRow[kk])
			b := softfloat.F32FromBits(bCol[kk])
			prod := a * b
			pb := math.Float32bits(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := math.Float32bits(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignSum += bitops.Alignment(aRow[kk], bCol[kk], width)
		}
	case matrix.FP16:
		var acc uint16
		var prevProd, prevAcc uint16
		for kk := 0; kk < k; kk++ {
			prod := softfloat.Mul16(uint16(aRow[kk]), uint16(bCol[kk]))
			prodTog += int64(bitops.Toggle16(prevProd, prod))
			prevProd = prod
			acc = softfloat.Add16(acc, prod)
			accTog += int64(bitops.Toggle16(prevAcc, acc))
			prevAcc = acc
			alignSum += bitops.Alignment(aRow[kk], bCol[kk], width)
		}
	case matrix.FP16T:
		var acc float32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			prod := softfloat.F16ToF32(uint16(aRow[kk])) * softfloat.F16ToF32(uint16(bCol[kk]))
			pb := math.Float32bits(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := math.Float32bits(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignSum += bitops.Alignment(aRow[kk], bCol[kk], width)
		}
	case matrix.BF16T:
		var acc float32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			prod := softfloat.BF16ToF32(uint16(aRow[kk])) * softfloat.BF16ToF32(uint16(bCol[kk]))
			pb := math.Float32bits(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := math.Float32bits(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignSum += bitops.Alignment(aRow[kk], bCol[kk], width)
		}
	case matrix.INT8:
		var acc int32
		var prevProd, prevAcc uint32
		for kk := 0; kk < k; kk++ {
			prod := int32(int8(uint8(aRow[kk]))) * int32(int8(uint8(bCol[kk])))
			pb := uint32(prod)
			prodTog += int64(bitops.Toggle32(prevProd, pb))
			prevProd = pb
			acc += prod
			ab := uint32(acc)
			accTog += int64(bitops.Toggle32(prevAcc, ab))
			prevAcc = ab
			alignSum += bitops.Alignment(aRow[kk], bCol[kk], width)
		}
	default:
		panic("activity: unknown dtype")
	}
	return prodTog, accTog, alignSum
}
