// Package repro is a from-scratch Go reproduction of "Input-Dependent
// Power Usage in GPUs" (Gregersen, Patel, Choukse — SC 2024,
// arXiv:2409.18324): a bit-accurate GPU GEMM simulator with an
// activity-based power model, a DCGM-like telemetry layer, and a full
// experiment harness that regenerates every figure of the paper's
// evaluation.
//
// Beyond the batch reproduction, internal/serve exposes the paper's §V
// input-dependent power model as a concurrent prediction service: a
// predictor registry that lazily trains one power.Predictor per
// (device, dtype) from a reduced experiment sweep, an LRU cache keyed
// by (device, dtype, canonical pattern, size) that lets repeated
// queries skip the GEMM-simulation hot path, and a sharded worker pool
// sized by GOMAXPROCS. The package is layered transport-free core
// first: serve.Core implements the Backend interface, serve.Server is
// a thin HTTP adapter over it, and serve.Handler mounts any Backend
// behind the five endpoints (/predict, /predict/batch, /train,
// /healthz, /metrics — see docs/API.md). cmd/powerserve serves one
// Core; internal/cluster shards the prediction keyspace across many
// (deterministic consistent-hash ring, fan-out/fan-in batch routing,
// shard failover) and cmd/powerrouter fronts such a ring with the
// identical API — sharded answers are byte-identical to single-node
// answers. examples/loadgen drives either topology with a mixed
// pattern workload in single-shot or batched mode, reporting
// throughput, latency percentiles and cache hit-rate (-shards N
// measures ring-vs-single scaling in-process).
//
// internal/fleet scales the effect to datacenter operations: a
// deterministic trace-driven simulator schedules GEMM job streams onto
// heterogeneous device fleets, integrates power and temperature,
// enforces aggregate power caps and thermal throttling, and resolves
// per-job operating points through the batched prediction path (one
// simulation per distinct key, however many jobs are queued).
// cmd/fleetsim is its CLI and examples/fleet the walkthrough.
//
// internal/sched makes fleet placement pluggable: policies observe
// per-device backlog, temperature and the Oracle's predicted operating
// points and return placements — EarliestCompletion (the historical
// scheduler, byte-identical by golden test), PowerPack (pack hot jobs
// under the cap), ThermalSpread and EnergyGreedy. sched.Compare
// replays one trace through several policies into an exact
// latency/energy/throttle front table (fleetsim -policy/-compare,
// examples/schedfront); fleet.ReadAlibabaCSV imports real cluster-log
// rows as job streams.
//
// # Engine architecture
//
// The simulation hot path is organized around precomputation and
// locality, with bit-identical results to the straightforward
// per-element formulation (golden equivalence tests in
// internal/kernels prove it element-by-element):
//
//   - internal/softfloat carries 65,536-entry lookup tables built at
//     init from the bit-exact conversions: F16→F32 decode (F16ToF32 is
//     a table read) and per-pattern significand Hamming weights for
//     FP16/BF16/INT8. F32ToF16 and F32ToI8 use branch-light exact-RNE
//     magic-number formulations, verified exhaustively against their
//     field-by-field references.
//   - internal/kernels packs both GEMM operands once per problem into
//     contiguous decoded panels — A row-major, B column-major — so the
//     O(N³) inner loop is a register-resident dot product in the exact
//     arithmetic of the datatype. Work is scheduled as cache-blocked
//     row ranges through an atomic cursor shared by the datatype
//     engine and the float64 reference oracle, and the α/β epilogue is
//     fused into the accumulator retirement.
//   - internal/activity computes all exact terms in one fused scan per
//     operand (toggles, per-k significand sums via the LUTs, Hamming
//     weight, non-zero counts) and walks sampled product/accumulator
//     trajectories grouped by output column, with positions drawn
//     without replacement.
//   - internal/rng generates Gaussians with a 256-layer ziggurat (one
//     64-bit draw per variate on the fast path); internal/experiments
//     caches base matrices per (seed, operand side, encoding class)
//     within a Run so sweep points derive transform variants from one
//     generation.
//
// See README.md for the layout and quickstart, docs/ARCHITECTURE.md
// for the package map, the bit-identity guarantee, the caching layers
// and the measured before/after performance table, and docs/API.md for
// the serving endpoints (every documented example body is round-tripped
// through the real handler by internal/serve's apidoc test).
//
// The benchmarks in bench_test.go regenerate each figure at a reduced
// scale (one per table/figure of the paper); cmd/figures runs the
// full-scale campaign (with -cpuprofile/-memprofile for perf work).
// CI (.github/workflows/ci.yml) gates gofmt, vet, doc-comment coverage
// (cmd/doccheck), build (examples included), race tests, a bench smoke
// pass whose JSON output is kept as a per-commit BENCH_*.json artifact
// (cmd/benchdiff fails CI on a >25% regression in any figure, engine
// or fleet benchmark), a deterministic capped fleetsim smoke run
// (byte-identical repeat and recorded-trace replay) uploaded as an
// artifact, and a sharded serving smoke that cmp's a fixed batch
// replayed through a 2-shard powerrouter against a single powerserve.
package repro
