// Package repro is a from-scratch Go reproduction of "Input-Dependent
// Power Usage in GPUs" (Gregersen, Patel, Choukse — SC 2024,
// arXiv:2409.18324): a bit-accurate GPU GEMM simulator with an
// activity-based power model, a DCGM-like telemetry layer, and a full
// experiment harness that regenerates every figure of the paper's
// evaluation.
//
// See README.md for the layout and quickstart, DESIGN.md for the system
// inventory and the hardware-substitution rationale, and EXPERIMENTS.md
// for paper-versus-measured trends per figure.
//
// The benchmarks in bench_test.go regenerate each figure at a reduced
// scale (one per table/figure of the paper); cmd/figures runs the
// full-scale campaign.
package repro
