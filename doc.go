// Package repro is a from-scratch Go reproduction of "Input-Dependent
// Power Usage in GPUs" (Gregersen, Patel, Choukse — SC 2024,
// arXiv:2409.18324): a bit-accurate GPU GEMM simulator with an
// activity-based power model, a DCGM-like telemetry layer, and a full
// experiment harness that regenerates every figure of the paper's
// evaluation.
//
// Beyond the batch reproduction, internal/serve exposes the paper's §V
// input-dependent power model as a concurrent prediction service: a
// predictor registry that lazily trains one power.Predictor per
// (device, dtype) from a reduced experiment sweep, an LRU cache keyed
// by (device, dtype, canonical pattern, size) that lets repeated
// queries skip the GEMM-simulation hot path, and a sharded worker pool
// sized by GOMAXPROCS. cmd/powerserve serves it over HTTP/JSON
// (/predict, /train, /healthz) and examples/loadgen drives it with a
// mixed pattern workload, reporting throughput, latency percentiles
// and cache hit-rate.
//
// See README.md for the layout, quickstart and serving architecture,
// DESIGN.md for the system inventory and the hardware-substitution
// rationale, and EXPERIMENTS.md for paper-versus-measured trends per
// figure.
//
// The benchmarks in bench_test.go regenerate each figure at a reduced
// scale (one per table/figure of the paper); cmd/figures runs the
// full-scale campaign. CI (.github/workflows/ci.yml) gates gofmt, vet,
// build, race tests, and a bench smoke pass whose JSON output is kept
// as a per-commit BENCH_*.json artifact.
package repro
