// Quickstart: measure how input data changes GEMM power on a simulated
// A100, exactly the paper's headline observation — same kernel, same
// shapes, same runtime, different watts.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/matrix"
)

func main() {
	sim, err := core.NewSimulator(device.A100PCIe())
	if err != nil {
		log.Fatal(err)
	}

	const size = 1024
	dt := matrix.FP16
	opts := core.DefaultOptions()
	opts.SampleOutputs = 128

	inputs := []string{
		"gaussian(default)",                    // the paper's baseline
		"gaussian(mean=500, std=1)",            // T2: large mean
		"set(n=4, mean=0, std=210)",            // T3: few unique values
		"constant(random)",                     // T4: maximally similar bits
		"gaussian(default) | sort(rows, 100%)", // T8: sorted placement
		"gaussian(default) | sparsify(50%)",    // T12: value sparsity
		"gaussian(default) | zerolsb(8)",       // T14: bit-level sparsity
	}

	fmt.Printf("Input-dependent GEMM power on %s (%v, %dx%d)\n\n",
		sim.Device().Name, dt, size, size)
	fmt.Printf("%-40s %10s %12s %10s\n", "input pattern", "power (W)", "runtime (µs)", "vs base")

	var base float64
	for i, dsl := range inputs {
		m, err := sim.MeasureDSL(dt, size, dsl, opts)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = m.AvgPowerW
		}
		fmt.Printf("%-40s %10.1f %12.1f %+9.1f%%\n",
			dsl, m.AvgPowerW, m.IterTimeS*1e6, 100*(m.AvgPowerW-base)/base)
	}

	fmt.Println("\nNote the runtime column: the kernel does identical work for every")
	fmt.Println("input, so all of the power change is input-dependent switching activity.")
}
