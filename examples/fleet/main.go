// Fleet walkthrough: the paper's input-dependent power effect at
// datacenter scale.
//
// A mixed GEMM job stream runs on a small heterogeneous fleet three
// times:
//
//  1. uncapped, with input patterns that toggle many bits (the
//     power-hungry end of the paper's §IV axes),
//  2. the same stream with bit-cheap input encodings (sparse, sorted,
//     LSB-zeroed) — same kernel shapes, same schedule, lower watts,
//  3. the expensive stream again under an aggregate power cap sized to
//     the cheap stream's peak, showing what the operator pays in
//     latency for provisioning to the cheap number.
//
// Operating points are resolved through an in-process serving instance
// and its batched prediction path, so the console also shows the
// coalescing economics: thousands of job lookups, a handful of
// simulations.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/serve"
)

func main() {
	devs := []*device.Device{
		device.A100PCIe(), device.A100PCIe(), device.A100PCIe(),
		device.H100SXM(),
	}

	// One serving instance answers every run through /predict/batch
	// semantics; its LRU carries across runs, so repeated keys are
	// free the second time too.
	srv := serve.New(serve.Config{})
	defer srv.Close()
	oracle := fleet.NewServerOracle(srv)

	expensive := []string{
		"gaussian(default)",
		"gaussian(mean=500, std=1)",
		"constant(random)",
	}
	cheap := []string{
		"gaussian(default) | sparsify(75%)",
		"gaussian(default) | sort(rows, 100%)",
		"gaussian(default) | zerolsb(8)",
	}

	base := fleet.SyntheticConfig{
		Jobs:     192,
		RatePerS: 150,
		Seed:     42,
		DTypes:   []string{"FP16", "FP16-T", "INT8"},
		Sizes:    []int{256, 512},
	}

	fmt.Println("fleet: 3×A100 + 1×H100, 192 jobs, sizes 256/512, FP16/FP16-T/INT8")
	fmt.Println()

	hot := runOnce(devs, oracle, base, expensive, 0)
	show("dense/random inputs, uncapped", hot)

	cold := runOnce(devs, oracle, base, cheap, 0)
	show("sparse/sorted/zeroed inputs, uncapped", cold)

	fmt.Printf("input encoding alone moved the fleet average by %.0f W (%.1f%%)\n\n",
		hot.AvgFleetW-cold.AvgFleetW, 100*(hot.AvgFleetW-cold.AvgFleetW)/hot.AvgFleetW)

	// Provision for the cheap stream, then run the expensive one.
	capW := cold.PeakFleetW
	capped := runOnce(devs, oracle, base, expensive, capW)
	show(fmt.Sprintf("dense/random inputs under a %.0f W cap", capW), capped)

	capEvents := 0
	for _, ev := range capped.ThrottleEvents {
		if ev.Reason == "cap" {
			capEvents++
		}
	}
	fmt.Printf("capping to the cheap stream's peak cost %.0f%% extra makespan and %d throttle events\n",
		100*(capped.DurationS-hot.DurationS)/hot.DurationS, capEvents)

	st := oracle.Stats()
	fmt.Printf("\nbatched prediction: %d job lookups resolved by %d distinct simulations (%.1f× coalescing)\n",
		st.Lookups, st.Distinct, float64(st.Lookups)/float64(st.Distinct))
}

func runOnce(devs []*device.Device, oracle fleet.Oracle, base fleet.SyntheticConfig, pats []string, capW float64) *fleet.Report {
	cfg := base
	cfg.Patterns = pats
	trace, err := fleet.Synthetic(cfg)
	if err != nil {
		log.Fatalf("fleet example: %v", err)
	}
	r, err := fleet.Run(context.Background(), fleet.Config{
		Devices:   devs,
		Oracle:    oracle,
		PowerCapW: capW,
	}, trace)
	if err != nil {
		log.Fatalf("fleet example: %v", err)
	}
	return r
}

func show(label string, r *fleet.Report) {
	fmt.Printf("%s:\n", label)
	fmt.Printf("  makespan %.2fs, fleet avg %.0f W, peak %.0f W, energy %.0f J\n",
		r.DurationS, r.AvgFleetW, r.PeakFleetW, r.FleetEnergyJ)
	fmt.Printf("  latency p50/p90/p99 = %.3f/%.3f/%.3f s, %d throttle events\n",
		r.LatencyP50S, r.LatencyP90S, r.LatencyP99S, len(r.ThrottleEvents))
	for _, d := range r.Devices {
		fmt.Printf("  %-22s %3d jobs, util %4.0f%%, avg %.0f W, max %.1f °C\n",
			d.Device, d.JobsRun, 100*d.UtilizationFrac, d.AvgPowerW, d.MaxTempC)
	}
	fmt.Println()
}
