// Scheduling-front walkthrough: what a power-aware placement policy
// buys at fleet scale.
//
// One mixed-encoding GEMM stream — power-hungry dense/random inputs
// interleaved with cheap-bit encodings (constant, sparse, sorted,
// LSB-zeroed) — replays through every built-in scheduling policy on a
// capped 4×A100 fleet. The simulator is deterministic, so the table is
// an exact A/B front: every difference between rows is caused by
// placement alone.
//
//   - EarliestCompletion chases latency and piles hot jobs onto the
//     fleet concurrently, so the aggregate cap governor fires.
//   - PowerPack packs jobs by dynamic power, serializing the hot ones:
//     cap-throttle events drop to zero for a makespan price.
//   - ThermalSpread and EnergyGreedy trace intermediate points.
//
// The same table comes from:
//
//	fleetsim -compare EarliestCompletion,PowerPack,ThermalSpread,EnergyGreedy \
//	  -devices "A100-PCIe-40GB:4" -cap 310 -sizes 512 ...
//
//	go run ./examples/schedfront
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/sched"
)

func main() {
	trace, err := fleet.Synthetic(fleet.SyntheticConfig{
		Jobs:     96,
		RatePerS: 300,
		Seed:     42,
		DTypes:   []string{"FP16", "FP16-T", "INT8"},
		Patterns: []string{
			// Hot encodings: dense Gaussian activity, the power-hungry
			// end of the paper's §IV axes.
			"gaussian(default)",
			"gaussian(mean=500, std=1)",
			// Cheap-bit encodings: the same kernel shapes at lower
			// toggle activity.
			"constant(7)",
			"gaussian(default) | sparsify(75%)",
			"gaussian(default) | sort(rows, 100%)",
			"gaussian(default) | zerolsb(8)",
		},
		Sizes: []int{512},
	})
	if err != nil {
		log.Fatalf("schedfront: %v", err)
	}

	// Cap sized between the fleet's idle floor (4×55 W) and its
	// uncapped mixed-stream peak (~350 W): hot jobs running
	// concurrently breach it, serialized hot jobs do not.
	cfg := fleet.Config{
		Devices: []*device.Device{
			device.A100PCIe(), device.A100PCIe(), device.A100PCIe(), device.A100PCIe(),
		},
		Oracle:    &fleet.ModelOracle{SampleOutputs: 128},
		PowerCapW: 310,
	}

	fmt.Println("schedfront: 96 mixed-encoding jobs (512² GEMMs, FP16/FP16-T/INT8) on 4×A100 under a 310 W cap")
	fmt.Println()

	front, err := sched.Compare(context.Background(), fleet.PolicyRunner(cfg, trace), sched.All())
	if err != nil {
		log.Fatalf("schedfront: %v", err)
	}

	fmt.Printf("%-20s %9s %9s %9s %9s %7s %10s\n",
		"policy", "makespan", "p99 lat", "energy", "avg W", "events", "capped s")
	for _, o := range front.Outcomes {
		fmt.Printf("%-20s %8.2fs %8.2fs %8.0fJ %9.1f %7d %9.3fs\n",
			o.Policy, o.MakespanS, o.LatencyP99S, o.FleetEnergyJ, o.AvgFleetW, o.ThrottleEvents, o.CapThrottledS)
	}
	fmt.Println()

	ec, _ := front.ByPolicy("EarliestCompletion")
	pp, _ := front.ByPolicy("PowerPack")
	if pp.ThrottleEvents >= ec.ThrottleEvents {
		fmt.Fprintf(os.Stderr, "schedfront: expected PowerPack (%d events) to throttle less than EarliestCompletion (%d)\n",
			pp.ThrottleEvents, ec.ThrottleEvents)
		os.Exit(1)
	}
	fmt.Printf("PowerPack eliminated %d of %d cap-throttle events (%.3fs of capped device time)\n",
		ec.ThrottleEvents-pp.ThrottleEvents, ec.ThrottleEvents, ec.CapThrottledS-pp.CapThrottledS)
	fmt.Printf("the price is makespan: %.2fs vs %.2fs (%.1f×) — the exact front an operator chooses on\n",
		pp.MakespanS, ec.MakespanS, pp.MakespanS/ec.MakespanS)
}
