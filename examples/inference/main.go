// inference profiles the GEMM shapes of LLM serving — the workload the
// paper's introduction motivates — on the simulated A100: prefill
// (large square-ish GEMMs, compute-bound, near the paper's operating
// point) versus decode (batch-sized skinny GEMMs, memory-bound), and
// how much input-dependent headroom each phase offers.
package main

import (
	"fmt"
	"log"

	"repro/internal/activity"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/patterns"
	"repro/internal/power"
	"repro/internal/rng"
)

const dModel = 4096

func main() {
	dev := device.A100PCIe()
	sim, err := core.NewSimulator(dev)
	if err != nil {
		log.Fatal(err)
	}
	dt := matrix.FP16T

	type phase struct {
		name   string
		tokens int // rows of the activation matrix
	}
	phases := []phase{
		{"prefill (2048-token prompt)", 2048},
		{"decode (batch 64)", 64},
		{"decode (batch 8)", 8},
		{"decode (batch 1)", 1},
	}

	fmt.Printf("LLM projection GEMMs (tokens × %d × %d, %v) on %s\n\n", dModel, dModel, dt, dev.Name)
	fmt.Printf("%-28s %10s %12s %10s %12s %10s\n",
		"phase", "power (W)", "runtime (µs)", "bound", "J/token", "headroom")

	for _, ph := range phases {
		dense := measure(sim, dt, ph.tokens, func(m *matrix.Matrix, src *rng.Source) {
			patterns.Gaussian(0, 0.05).Apply(m, src)
		})
		// Input-dependent headroom: the same GEMM with half the weight
		// bits zeroed (T14-style physical sparsity).
		lean := measure(sim, dt, ph.tokens, func(m *matrix.Matrix, src *rng.Source) {
			patterns.Gaussian(0, 0.05).ZeroLSBs(5).Apply(m, src)
		})

		bound := "compute"
		if dense.memBound {
			bound = "memory"
		}
		joulesPerToken := dense.energyJ / float64(ph.tokens)
		headroom := 100 * (dense.powerW - lean.powerW) / dense.powerW
		fmt.Printf("%-28s %10.1f %12.1f %10s %12.5f %9.1f%%\n",
			ph.name, dense.powerW, dense.iterUs, bound, joulesPerToken, headroom)
	}

	fmt.Println("\nPrefill runs at the paper's compute-bound operating point, where input")
	fmt.Println("patterns move a large dynamic-power budget. Decode is memory-bound:")
	fmt.Println("compute units idle on operand delivery, absolute power is lower, and the")
	fmt.Println("input-dependent headroom shrinks with it — energy per token, however,")
	fmt.Println("explodes at small batch, which is why batching remains the first-order")
	fmt.Println("power lever and input patterns the second.")
}

type row struct {
	powerW   float64
	iterUs   float64
	energyJ  float64
	memBound bool
}

func measure(sim *core.Simulator, dt matrix.DType, tokens int,
	fill func(m *matrix.Matrix, src *rng.Source)) row {

	x := matrix.New(dt, tokens, dModel)
	w := matrix.New(dt, dModel, dModel)
	fill(x, rng.Derive(1, "acts"))
	fill(w, rng.Derive(1, "weights"))

	tile := kernels.SelectTile(dt, tokens, dModel)
	m, err := sim.MeasureGEMM(x, w, core.Options{SampleOutputs: 64, VMInstance: 1, Tile: tile})
	if err != nil {
		log.Fatal(err)
	}
	// MemBound lives on the power result; recompute it through the
	// lower-level API for reporting.
	prob := kernels.NewProblem(dt, x, w)
	prob.Tile = tile
	rep, err := activity.Analyze(prob, activity.Config{SampleOutputs: 16})
	if err != nil {
		log.Fatal(err)
	}
	res, err := power.Evaluate(sim.Device(), prob, rep)
	if err != nil {
		log.Fatal(err)
	}
	return row{
		powerW:   m.AvgPowerW,
		iterUs:   m.IterTimeS * 1e6,
		energyJ:  m.EnergyPerIterJ,
		memBound: res.MemBound,
	}
}
