// sortsweep reproduces the paper's placement study (§IV-C, Fig. 5) as a
// stand-alone comparison of the four sorting variants, printing the
// power saved by each as the sorted fraction grows — including the T9
// observation that *aligned* sorting (B transposed) beats plain row
// sorting.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/matrix"
	"repro/internal/patterns"
)

func main() {
	sim, err := core.NewSimulator(device.A100PCIe())
	if err != nil {
		log.Fatal(err)
	}
	const size = 1024
	dt := matrix.FP16

	type variant struct {
		name       string
		kind       patterns.SortKind
		transposeB bool
	}
	variants := []variant{
		{"sorted rows (5a)", patterns.SortRows, false},
		{"sorted+aligned (5b)", patterns.SortRows, true},
		{"sorted columns (5c)", patterns.SortCols, true},
		{"within rows (5d)", patterns.SortWithinRows, true},
	}
	fracs := []float64{0, 0.25, 0.5, 0.75, 1}

	fmt.Printf("Placement sweep on %s (%v, %dx%d), power in W\n\n", sim.Device().Name, dt, size, size)
	fmt.Printf("%-22s", "variant \\ sorted")
	for _, f := range fracs {
		fmt.Printf(" %7.0f%%", f*100)
	}
	fmt.Println()

	results := map[string][]float64{}
	for _, v := range variants {
		fmt.Printf("%-22s", v.name)
		for _, f := range fracs {
			opts := core.DefaultOptions()
			opts.TransposeB = v.transposeB
			opts.SampleOutputs = 128
			m, err := sim.MeasurePattern(dt, size, patterns.GaussianDefault().Sorted(v.kind, f), opts)
			if err != nil {
				log.Fatal(err)
			}
			results[v.name] = append(results[v.name], m.AvgPowerW)
			fmt.Printf(" %8.1f", m.AvgPowerW)
		}
		fmt.Println()
	}

	fmt.Println("\nreduction at 100% sorted vs unsorted:")
	for _, v := range variants {
		r := results[v.name]
		fmt.Printf("  %-22s %5.1f W (%.1f%%)\n", v.name, r[0]-r[len(r)-1],
			100*(r[0]-r[len(r)-1])/r[0])
	}
	fmt.Println("\nT9: the aligned variant (5b) saves the most; T11: within-row (5d) the least.")
}
