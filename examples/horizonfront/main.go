// Horizon-front walkthrough: what looking ahead buys a power-capped
// scheduler.
//
// The same capped mixed-encoding scenario as examples/schedfront — 96
// GEMM jobs, hot dense encodings interleaved with cheap-bit ones, on
// 4×A100 under a 310 W cap — replayed through three policies:
//
//   - EarliestCompletion chases latency; hot jobs pile up concurrently
//     and the aggregate cap governor fires.
//   - PowerPack reacts to the fleet's *instantaneous* dynamic power. It
//     eliminates throttling, but because it only sees the present it
//     serializes hot jobs far more than the cap requires.
//   - PredictiveHorizon projects every instance's committed power
//     timeline over the next N seconds and asks, per candidate, whether
//     the job's own demand would breach the cap anywhere in that
//     window. Jobs that fit concurrently run concurrently; jobs that
//     would breach are deferred exactly as long as needed.
//
// The result is a strictly better knee: PredictiveHorizon matches
// PowerPack's zero throttle events at a fraction of its makespan —
// foresight replaces conservatism. The simulator is deterministic, so
// the table is an exact A/B front, and the same three rows are pinned
// as the CI fixture .github/testdata/horizon-front.csv.
//
// The same table comes from:
//
//	fleetsim -compare EarliestCompletion,PowerPack,PredictiveHorizon \
//	  -devices "A100-PCIe-40GB:4" -cap 310 -window 30 -sizes 512 ...
//
//	go run ./examples/horizonfront
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/sched"
)

func main() {
	trace, err := fleet.Synthetic(fleet.SyntheticConfig{
		Jobs:     96,
		RatePerS: 300,
		Seed:     42,
		DTypes:   []string{"FP16", "FP16-T", "INT8"},
		Patterns: []string{
			"gaussian(default)",
			"gaussian(mean=500, std=1)",
			"constant(7)",
			"gaussian(default) | sparsify(75%)",
			"gaussian(default) | sort(rows, 100%)",
			"gaussian(default) | zerolsb(8)",
		},
		Sizes: []int{512},
	})
	if err != nil {
		log.Fatalf("horizonfront: %v", err)
	}

	cfg := fleet.Config{
		Devices: []*device.Device{
			device.A100PCIe(), device.A100PCIe(), device.A100PCIe(), device.A100PCIe(),
		},
		Oracle:    &fleet.ModelOracle{SampleOutputs: 128},
		PowerCapW: 310,
	}

	fmt.Println("horizonfront: 96 mixed-encoding jobs (512² GEMMs) on 4×A100 under a 310 W cap, 30 s projection window")
	fmt.Println()

	front, err := sched.Compare(context.Background(), fleet.PolicyRunner(cfg, trace),
		[]sched.Policy{
			sched.EarliestCompletion{},
			sched.PowerPack{},
			sched.PredictiveHorizon{WindowS: sched.DefaultHorizonWindowS},
		})
	if err != nil {
		log.Fatalf("horizonfront: %v", err)
	}

	fmt.Printf("%-20s %9s %9s %9s %9s %7s %10s\n",
		"policy", "makespan", "p99 lat", "energy", "avg W", "events", "capped s")
	for _, o := range front.Outcomes {
		fmt.Printf("%-20s %8.2fs %8.2fs %8.0fJ %9.1f %7d %9.3fs\n",
			o.Policy, o.MakespanS, o.LatencyP99S, o.FleetEnergyJ, o.AvgFleetW, o.ThrottleEvents, o.CapThrottledS)
	}
	fmt.Println()

	ec, _ := front.ByPolicy("EarliestCompletion")
	pp, _ := front.ByPolicy("PowerPack")
	ph, _ := front.ByPolicy("PredictiveHorizon")
	if ph.ThrottleEvents > pp.ThrottleEvents || ph.MakespanS >= pp.MakespanS {
		fmt.Fprintf(os.Stderr, "horizonfront: expected PredictiveHorizon (%d events, %.2fs) to dominate PowerPack (%d events, %.2fs)\n",
			ph.ThrottleEvents, ph.MakespanS, pp.ThrottleEvents, pp.MakespanS)
		os.Exit(1)
	}
	fmt.Printf("PredictiveHorizon holds PowerPack's throttle count (%d vs %d; EarliestCompletion had %d)\n",
		ph.ThrottleEvents, pp.ThrottleEvents, ec.ThrottleEvents)
	fmt.Printf("at %.2fs makespan vs PowerPack's %.2fs (%.1f× faster) — within %.1f× of the uncapped-style EC %.2fs\n",
		ph.MakespanS, pp.MakespanS, pp.MakespanS/ph.MakespanS, ph.MakespanS/ec.MakespanS, ec.MakespanS)
}
