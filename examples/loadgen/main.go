// Loadgen hammers a powerserve (or powerrouter) instance with a mixed
// input-pattern workload at a fixed concurrency and reports
// throughput, latency percentiles and the server's cache hit-rate —
// the ROADMAP's "heavy traffic" scenario in miniature.
//
// Start the server, then:
//
//	go run ./examples/loadgen -addr http://localhost:8090 -c 64 -n 1024
//
// The default workload cycles a small set of patterns, so after the
// first pass almost every request is a cache hit; -unique switches to
// all-distinct patterns to measure the uncached simulation path.
//
// -batch groups the same workload into POST /predict/batch bodies of
// the given size, so one HTTP round trip answers many predictions and
// the server coalesces duplicate keys; compare the reported
// request throughput against a -batch 0 run of the same workload:
//
//	go run ./examples/loadgen -c 64 -n 8192            # single-shot
//	go run ./examples/loadgen -c 64 -n 8192 -batch 32  # batched
//
// -shards N ignores -addr and measures scaling instead: the same
// workload is replayed against one in-process serving instance and
// then against a powerrouter-shaped consistent-hash ring of N
// in-process shards (real HTTP on loopback in both topologies), and
// the speedup is reported. Answers are byte-identical across the two
// topologies by construction; only throughput differs:
//
//	go run ./examples/loadgen -shards 3 -c 64 -n 8192 -batch 32
//
// -resize-at K (ring mode only) grows the ring live: once K measured
// requests have been enqueued, a fresh shard joins through the same
// POST /admin/shards surface cmd/powerrouter exposes, with cache
// handoff warming the new owner before it takes traffic. The report
// then splits the cache hit-rate into pre- and post-resize windows so
// the dip the handoff avoided (or didn't) is a printed number:
//
//	go run ./examples/loadgen -shards 3 -n 8192 -resize-at 4096
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/patterns"
	"repro/internal/serve"
)

// traceIDs mints one X-Trace-Id per request from the house RNG, so a
// loadgen run's traffic shows up in the servers' /debug/spans rings
// with stable, greppable identities — rerun the same workload and the
// same requests carry the same trace IDs.
var traceIDs = obs.NewIDGen(0x10adce4, "loadgen")

type predictRequest struct {
	Device  string `json:"device,omitempty"`
	DType   string `json:"dtype,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	Size    int    `json:"size,omitempty"`
}

type batchRequest struct {
	Requests []predictRequest `json:"requests"`
}

type batchItem struct {
	Error string `json:"error,omitempty"`
}

type batchResponse struct {
	Items     []batchItem `json:"items"`
	Distinct  int         `json:"distinct"`
	Coalesced int         `json:"coalesced"`
}

type healthResponse struct {
	Status  string           `json:"status"`
	Metrics map[string]int64 `json:"metrics"`
}

// resizeReport mirrors the fields of cluster.ResizeReport the summary
// line prints.
type resizeReport struct {
	Slot            int `json:"slot"`
	RangesMoved     int `json:"ranges_moved"`
	KeysMoved       int `json:"keys_moved"`
	EntriesMigrated int `json:"entries_migrated"`
}

// loadConfig is everything one measured run needs.
type loadConfig struct {
	addr   string
	conc   int
	total  int
	size   int
	dtype  string
	pats   []string
	unique bool
	batch  int
	client *http.Client

	// resize, when set, is invoked once as the resizeAt-th measured
	// request is enqueued — requests already queued keep flowing while
	// the topology changes underneath them.
	resizeAt int
	resize   func() (string, error)
}

// loadResult is what one measured run produced.
type loadResult struct {
	elapsed             time.Duration
	latencies           obs.HistogramSnapshot // the shared serving-stack histogram
	failed              int
	coalesced, distinct int64
	before, after       *healthResponse

	// resizeSnap is the health snapshot taken just before the live
	// resize; resizeSummary describes what the resize did.
	resizeSnap    *healthResponse
	resizeSummary string
}

func (r *loadResult) throughput(total int) float64 {
	return float64(total) / r.elapsed.Seconds()
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8090", "powerserve/powerrouter base URL")
		conc     = flag.Int("c", 64, "concurrent requests in flight")
		total    = flag.Int("n", 1024, "total requests")
		size     = flag.Int("size", 128, "GEMM dimension per request")
		dtype    = flag.String("dtype", "FP16", "datatype")
		patsFlag = flag.String("patterns", "", "semicolon-separated pattern DSLs (default: a mixed set of 8); patterns contain commas, so ';' separates")
		unique   = flag.Bool("unique", false, "make every request a distinct pattern (all cache misses)")
		batch    = flag.Int("batch", 0, "group requests into /predict/batch bodies of this size (0 = single-shot /predict)")
		shards   = flag.Int("shards", 0, "measure scaling: replay the workload against 1 in-process instance and an in-process ring of N shards (ignores -addr)")
		resizeAt = flag.Int("resize-at", 0, "with -shards: add one shard live after this many measured ring requests, and report the hit-rate dip (0 = no resize)")
	)
	flag.Parse()
	if *resizeAt > 0 && *shards <= 0 {
		log.Fatal("loadgen: -resize-at needs a ring to resize; pass -shards N")
	}

	pats := defaultPatterns()
	if *patsFlag != "" {
		pats = strings.Split(*patsFlag, ";")
	}
	// Canonicalize client-side: typos fail here with a parse position
	// instead of as a wall of HTTP 400s, and equivalent spellings
	// collapse onto the same server cache key.
	for i, p := range pats {
		canon, err := patterns.Canonicalize(p)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		pats[i] = canon
	}

	client := &http.Client{
		Timeout: 5 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        *conc,
			MaxIdleConnsPerHost: *conc,
		},
	}
	cfg := loadConfig{
		conc:   *conc,
		total:  *total,
		size:   *size,
		dtype:  *dtype,
		pats:   pats,
		unique: *unique,
		batch:  *batch,
		client: client,
	}

	// One number before any topology: what a single uncached Predict
	// computation costs in-process. Every HTTP latency in the report
	// decomposes into this floor plus transport, queueing and cache
	// effects, so it anchors the comparison.
	perOp := measureSingleCompute(*dtype, *size)
	fmt.Printf("calibration: single in-process Predict compute (cache-miss path): %d ns/op (%v)\n\n",
		perOp.Nanoseconds(), perOp.Round(time.Microsecond))

	if *shards > 0 {
		runScalingComparison(cfg, *shards, *resizeAt)
		return
	}

	cfg.addr = *addr
	res := runLoad(cfg)
	report(cfg, res)
	if res.failed > 0 {
		os.Exit(1)
	}
}

// runScalingComparison replays one workload against a single
// in-process serving instance and against a router over an in-process
// ring, then reports the throughput ratio. Both topologies speak real
// HTTP on loopback, both are warmed identically, and both return
// byte-identical answers — the ratio isolates what sharding buys.
// With resizeAt > 0 the ring additionally grows by one shard mid-run,
// so the report shows what a live topology change costs.
func runScalingComparison(cfg loadConfig, shards, resizeAt int) {
	fmt.Printf("loadgen: scaling comparison, 1 instance vs %d-shard ring\n\n", shards)

	single, closeSingle := startInstanceTopology()
	cfg.addr = single
	fmt.Println("— single instance —")
	singleRes := runLoad(cfg)
	report(cfg, singleRes)
	closeSingle()

	router, addShard, closeRing := startRingTopology(shards)
	cfg.addr = router
	if resizeAt > 0 {
		cfg.resizeAt = resizeAt
		cfg.resize = addShard
		fmt.Printf("\n— %d-shard ring behind router, +1 shard at request %d —\n", shards, resizeAt)
	} else {
		fmt.Printf("\n— %d-shard ring behind router —\n", shards)
	}
	ringRes := runLoad(cfg)
	report(cfg, ringRes)
	closeRing()

	speedup := ringRes.throughput(cfg.total) / singleRes.throughput(cfg.total)
	fmt.Printf("\nscaling: %d shards served %.0f req/s vs %.0f req/s single — %.2fx\n",
		shards, ringRes.throughput(cfg.total), singleRes.throughput(cfg.total), speedup)
	if singleRes.failed+ringRes.failed > 0 {
		os.Exit(1)
	}
}

// measureSingleCompute times one uncached Predict on an in-process
// Core — the simulation a cache miss pays on the serving hot path,
// with no HTTP, queueing or cache in the way. The first request pays
// the lazy predictor training outside the measured window; every
// measured request uses a distinct pattern so each takes the
// cache-miss path.
func measureSingleCompute(dtype string, size int) time.Duration {
	core := serve.NewCore(serve.Config{})
	defer core.Close()
	ctx := context.Background()
	if _, err := core.Predict(ctx, serve.PredictRequest{
		DType: dtype, Pattern: "constant(-1)", Size: size,
	}); err != nil {
		log.Fatalf("loadgen: calibration warm-up: %v", err)
	}
	const reps = 16
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := core.Predict(ctx, serve.PredictRequest{
			DType: dtype, Pattern: fmt.Sprintf("constant(%d)", i), Size: size,
		}); err != nil {
			log.Fatalf("loadgen: calibration: %v", err)
		}
	}
	return time.Since(t0) / reps
}

// startInstanceTopology serves one Core over loopback HTTP.
func startInstanceTopology() (string, func()) {
	core := serve.NewCore(serve.Config{})
	srv := httptest.NewServer(serve.Handler(core))
	return srv.URL, func() { srv.Close(); core.Close() }
}

// startRingTopology serves n Cores behind a consistent-hash router,
// all over loopback HTTP — the same wire topology as n powerserve
// processes behind cmd/powerrouter, admin surface included. The
// returned addShard starts one more core and joins it through
// POST /admin/shards, exactly as an operator would.
func startRingTopology(n int) (string, func() (string, error), func()) {
	var mu sync.Mutex
	var closers []func()
	newShard := func() string {
		core := serve.NewCore(serve.Config{})
		srv := httptest.NewServer(serve.Handler(core))
		mu.Lock()
		closers = append(closers, srv.Close, core.Close)
		mu.Unlock()
		return srv.URL
	}
	ringCfg := cluster.Config{}
	for i := 0; i < n; i++ {
		url := newShard()
		ringCfg.Shards = append(ringCfg.Shards, cluster.Shard{
			Name:    url,
			Backend: cluster.NewHTTPBackend(url, nil),
		})
	}
	client, err := cluster.New(ringCfg)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/admin/", cluster.AdminHandler(client, func(url string) (serve.Backend, error) {
		return cluster.NewHTTPBackend(url, nil), nil
	}))
	mux.Handle("/", serve.Handler(client))
	router := httptest.NewServer(mux)
	mu.Lock()
	closers = append(closers, router.Close, client.Close)
	mu.Unlock()

	addShard := func() (string, error) {
		url := newShard()
		body, err := json.Marshal(map[string]string{"url": url})
		if err != nil {
			return "", err
		}
		resp, err := http.Post(router.URL+"/admin/shards", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("POST /admin/shards: status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		}
		var rep resizeReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return "", err
		}
		return fmt.Sprintf("joined slot %d: %d ranges moved, %d journaled keys, %d cache entries migrated",
			rep.Slot, rep.RangesMoved, rep.KeysMoved, rep.EntriesMigrated), nil
	}

	return router.URL, addShard, func() {
		mu.Lock()
		defer mu.Unlock()
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
}

// runLoad warms the target (one request per workload pattern, paying
// lazy predictor training and first-key simulation outside the
// measured window) and then replays the measured phase.
func runLoad(cfg loadConfig) *loadResult {
	for _, p := range cfg.pats {
		if err := predict(cfg.client, cfg.addr, predictRequest{
			DType: cfg.dtype, Pattern: p, Size: cfg.size,
		}); err != nil {
			log.Fatalf("loadgen: warm-up request failed: %v", err)
		}
	}
	res := &loadResult{before: health(cfg.client, cfg.addr)}

	patternFor := func(i int) string {
		if cfg.unique {
			return fmt.Sprintf("constant(%d)", i)
		}
		return cfg.pats[i%len(cfg.pats)]
	}

	jobs := make(chan int)
	// The same log-bucketed histogram the servers record into: workers
	// observe concurrently with no coordination, and the report reads
	// quantiles from the merged snapshot (within the histogram's bucket
	// resolution of an exact sort — see the agreement test).
	lat := obs.NewLatencyHistogram()
	errs := make([]error, cfg.total)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if cfg.batch <= 0 {
					t0 := time.Now()
					errs[i] = predict(cfg.client, cfg.addr, predictRequest{
						DType: cfg.dtype, Pattern: patternFor(i), Size: cfg.size,
					})
					lat.ObserveDuration(time.Since(t0))
					continue
				}
				// i is the first request index of a batch; every
				// member observes the whole batch's round-trip time,
				// which is what a caller awaiting the batch sees.
				end := i + cfg.batch
				if end > cfg.total {
					end = cfg.total
				}
				reqs := make([]predictRequest, 0, end-i)
				for j := i; j < end; j++ {
					reqs = append(reqs, predictRequest{DType: cfg.dtype, Pattern: patternFor(j), Size: cfg.size})
				}
				t0 := time.Now()
				resp, err := predictBatch(cfg.client, cfg.addr, reqs)
				rt := time.Since(t0)
				for j := i; j < end; j++ {
					lat.ObserveDuration(rt)
					errs[j] = err
				}
				if err == nil {
					for j, item := range resp.Items {
						if item.Error != "" {
							errs[i+j] = fmt.Errorf("item %d: %s", j, item.Error)
						}
					}
					atomic.AddInt64(&res.coalesced, int64(resp.Coalesced))
					atomic.AddInt64(&res.distinct, int64(resp.Distinct))
				}
			}
		}()
	}
	step := 1
	if cfg.batch > 0 {
		step = cfg.batch
	}
	resized := false
	for i := 0; i < cfg.total; i += step {
		if cfg.resize != nil && !resized && i >= cfg.resizeAt {
			// Snapshot first so the report can split hit-rate into
			// pre- and post-resize windows, then change the topology
			// while the queued requests are still in flight.
			resized = true
			res.resizeSnap = health(cfg.client, cfg.addr)
			summary, err := cfg.resize()
			if err != nil {
				log.Fatalf("loadgen: resize: %v", err)
			}
			res.resizeSummary = summary
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	res.elapsed = time.Since(start)

	for _, err := range errs {
		if err != nil {
			res.failed++
		}
	}
	res.latencies = lat.Snapshot()
	res.after = health(cfg.client, cfg.addr)
	return res
}

// report prints one measured run.
func report(cfg loadConfig, res *loadResult) {
	mode := "single-shot /predict"
	if cfg.batch > 0 {
		mode = fmt.Sprintf("/predict/batch × %d", cfg.batch)
	}
	fmt.Printf("loadgen: %d requests (%s), %d in flight, %d patterns, size %d, dtype %s\n",
		cfg.total, mode, cfg.conc, len(cfg.pats), cfg.size, cfg.dtype)
	fmt.Printf("  elapsed     : %v\n", res.elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput  : %.0f req/s\n", res.throughput(cfg.total))
	fmt.Printf("  latency p50 : %v\n", percentile(res.latencies, 0.50))
	fmt.Printf("  latency p95 : %v\n", percentile(res.latencies, 0.95))
	fmt.Printf("  latency p99 : %v\n", percentile(res.latencies, 0.99))
	fmt.Printf("  failures    : %d\n", res.failed)
	if cfg.batch > 0 {
		fmt.Printf("  coalesced   : %d requests onto %d distinct lookups\n", res.coalesced, res.distinct)
	}

	if res.before != nil && res.after != nil {
		hits := res.after.Metrics["serve.cache.hits"] - res.before.Metrics["serve.cache.hits"]
		misses := res.after.Metrics["serve.cache.misses"] - res.before.Metrics["serve.cache.misses"]
		if hits+misses > 0 {
			fmt.Printf("  cache hits  : %d/%d (%.1f%%)\n",
				hits, hits+misses, 100*float64(hits)/float64(hits+misses))
		}
		fmt.Printf("  simulations : %d\n", res.after.Metrics["serve.simulations"]-res.before.Metrics["serve.simulations"])
		fmt.Printf("  queue depth : max %d\n", res.after.Metrics["serve.queue.depth.max"])
	}

	if res.resizeSnap != nil && res.before != nil && res.after != nil {
		rate := func(from, to *healthResponse) float64 {
			hits := to.Metrics["serve.cache.hits"] - from.Metrics["serve.cache.hits"]
			misses := to.Metrics["serve.cache.misses"] - from.Metrics["serve.cache.misses"]
			if hits+misses == 0 {
				return 0
			}
			return 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Printf("  resize      : %s\n", res.resizeSummary)
		fmt.Printf("  hit rate    : %.1f%% pre-resize → %.1f%% post-resize (cold misses on moved keys: %d)\n",
			rate(res.before, res.resizeSnap), rate(res.resizeSnap, res.after),
			res.after.Metrics["cluster.resize.cold_misses"]-res.before.Metrics["cluster.resize.cold_misses"])
	}
}

// defaultPatterns spans the paper's input axes so the workload mixes
// cheap and expensive bit patterns.
func defaultPatterns() []string {
	return []string{
		"gaussian(default)",
		"gaussian(mean=500, std=1)",
		"constant(7)",
		"constant(random)",
		"set(n=4, mean=0, std=210)",
		"gaussian(default) | sparsify(50%)",
		"gaussian(default) | sort(rows, 100%)",
		"gaussian(default) | zerolsb(8)",
	}
}

// postTraced POSTs one JSON body with a fresh X-Trace-Id, so the
// request is findable in the server's /debug/spans ring.
func postTraced(client *http.Client, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceIDs.ID().String())
	return client.Do(req)
}

func predict(client *http.Client, addr string, req predictRequest) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := postTraced(client, addr+"/predict", buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

func predictBatch(client *http.Client, addr string, reqs []predictRequest) (*batchResponse, error) {
	buf, err := json.Marshal(batchRequest{Requests: reqs})
	if err != nil {
		return nil, err
	}
	resp, err := postTraced(client, addr+"/predict/batch", buf)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	if len(br.Items) != len(reqs) {
		return nil, fmt.Errorf("batch returned %d items for %d requests", len(br.Items), len(reqs))
	}
	return &br, nil
}

func health(client *http.Client, addr string) *healthResponse {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		log.Printf("loadgen: healthz: %v", err)
		return nil
	}
	defer resp.Body.Close()
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		log.Printf("loadgen: healthz decode: %v", err)
		return nil
	}
	return &hr
}

// percentile reads quantile p from the latency histogram snapshot.
// The histogram records nanoseconds, so the bucket upper bound
// converts straight to a duration; resolution is the histogram's
// bucket width (≤25% relative), which is plenty for a latency report.
func percentile(snap obs.HistogramSnapshot, p float64) time.Duration {
	return time.Duration(snap.Quantile(p))
}
