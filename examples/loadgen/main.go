// Loadgen hammers a running powerserve instance with a mixed
// input-pattern workload at a fixed concurrency and reports
// throughput, latency percentiles and the server's cache hit-rate —
// the ROADMAP's "heavy traffic" scenario in miniature.
//
// Start the server, then:
//
//	go run ./examples/loadgen -addr http://localhost:8090 -c 64 -n 1024
//
// The default workload cycles a small set of patterns, so after the
// first pass almost every request is a cache hit; -unique switches to
// all-distinct patterns to measure the uncached simulation path.
//
// -batch groups the same workload into POST /predict/batch bodies of
// the given size, so one HTTP round trip answers many predictions and
// the server coalesces duplicate keys; compare the reported
// request throughput against a -batch 0 run of the same workload:
//
//	go run ./examples/loadgen -c 64 -n 8192            # single-shot
//	go run ./examples/loadgen -c 64 -n 8192 -batch 32  # batched
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/patterns"
)

type predictRequest struct {
	Device  string `json:"device,omitempty"`
	DType   string `json:"dtype,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	Size    int    `json:"size,omitempty"`
}

type batchRequest struct {
	Requests []predictRequest `json:"requests"`
}

type batchItem struct {
	Error string `json:"error,omitempty"`
}

type batchResponse struct {
	Items     []batchItem `json:"items"`
	Distinct  int         `json:"distinct"`
	Coalesced int         `json:"coalesced"`
}

type healthResponse struct {
	Status  string           `json:"status"`
	Metrics map[string]int64 `json:"metrics"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8090", "powerserve base URL")
		conc     = flag.Int("c", 64, "concurrent requests in flight")
		total    = flag.Int("n", 1024, "total requests")
		size     = flag.Int("size", 128, "GEMM dimension per request")
		dtype    = flag.String("dtype", "FP16", "datatype")
		patsFlag = flag.String("patterns", "", "semicolon-separated pattern DSLs (default: a mixed set of 8); patterns contain commas, so ';' separates")
		unique   = flag.Bool("unique", false, "make every request a distinct pattern (all cache misses)")
		batch    = flag.Int("batch", 0, "group requests into /predict/batch bodies of this size (0 = single-shot /predict)")
	)
	flag.Parse()

	pats := defaultPatterns()
	if *patsFlag != "" {
		pats = strings.Split(*patsFlag, ";")
	}
	// Canonicalize client-side: typos fail here with a parse position
	// instead of as a wall of HTTP 400s, and equivalent spellings
	// collapse onto the same server cache key.
	for i, p := range pats {
		canon, err := patterns.Canonicalize(p)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		pats[i] = canon
	}

	client := &http.Client{
		Timeout: 5 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        *conc,
			MaxIdleConnsPerHost: *conc,
		},
	}

	// One warm-up request pays the lazy predictor training so the
	// measured phase sees steady-state serving latency.
	if err := predict(client, *addr, predictRequest{
		DType: *dtype, Pattern: pats[0], Size: *size,
	}); err != nil {
		log.Fatalf("loadgen: warm-up request failed: %v", err)
	}
	before := health(client, *addr)

	patternFor := func(i int) string {
		if *unique {
			return fmt.Sprintf("constant(%d)", i)
		}
		return pats[i%len(pats)]
	}

	jobs := make(chan int)
	latencies := make([]time.Duration, *total)
	errs := make([]error, *total)
	var coalesced, distinct int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if *batch <= 0 {
					t0 := time.Now()
					errs[i] = predict(client, *addr, predictRequest{
						DType: *dtype, Pattern: patternFor(i), Size: *size,
					})
					latencies[i] = time.Since(t0)
					continue
				}
				// i is the first request index of a batch; every
				// member observes the whole batch's round-trip time,
				// which is what a caller awaiting the batch sees.
				end := i + *batch
				if end > *total {
					end = *total
				}
				reqs := make([]predictRequest, 0, end-i)
				for j := i; j < end; j++ {
					reqs = append(reqs, predictRequest{DType: *dtype, Pattern: patternFor(j), Size: *size})
				}
				t0 := time.Now()
				resp, err := predictBatch(client, *addr, reqs)
				rt := time.Since(t0)
				for j := i; j < end; j++ {
					latencies[j] = rt
					errs[j] = err
				}
				if err == nil {
					for j, item := range resp.Items {
						if item.Error != "" {
							errs[i+j] = fmt.Errorf("item %d: %s", j, item.Error)
						}
					}
					atomic.AddInt64(&coalesced, int64(resp.Coalesced))
					atomic.AddInt64(&distinct, int64(resp.Distinct))
				}
			}
		}()
	}
	step := 1
	if *batch > 0 {
		step = *batch
	}
	for i := 0; i < *total; i += step {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	var failed int
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	after := health(client, *addr)

	mode := "single-shot /predict"
	if *batch > 0 {
		mode = fmt.Sprintf("/predict/batch × %d", *batch)
	}
	fmt.Printf("loadgen: %d requests (%s), %d in flight, %d patterns, size %d, dtype %s\n",
		*total, mode, *conc, len(pats), *size, *dtype)
	fmt.Printf("  elapsed     : %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput  : %.0f req/s\n", float64(*total)/elapsed.Seconds())
	fmt.Printf("  latency p50 : %v\n", percentile(latencies, 0.50))
	fmt.Printf("  latency p90 : %v\n", percentile(latencies, 0.90))
	fmt.Printf("  latency p99 : %v\n", percentile(latencies, 0.99))
	fmt.Printf("  failures    : %d\n", failed)
	if *batch > 0 {
		fmt.Printf("  coalesced   : %d requests onto %d distinct lookups\n", coalesced, distinct)
	}

	if before != nil && after != nil {
		hits := after.Metrics["serve.cache.hits"] - before.Metrics["serve.cache.hits"]
		misses := after.Metrics["serve.cache.misses"] - before.Metrics["serve.cache.misses"]
		if hits+misses > 0 {
			fmt.Printf("  cache hits  : %d/%d (%.1f%%)\n",
				hits, hits+misses, 100*float64(hits)/float64(hits+misses))
		}
		fmt.Printf("  simulations : %d\n", after.Metrics["serve.simulations"]-before.Metrics["serve.simulations"])
		fmt.Printf("  queue depth : max %d\n", after.Metrics["serve.queue.depth.max"])
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// defaultPatterns spans the paper's input axes so the workload mixes
// cheap and expensive bit patterns.
func defaultPatterns() []string {
	return []string{
		"gaussian(default)",
		"gaussian(mean=500, std=1)",
		"constant(7)",
		"constant(random)",
		"set(n=4, mean=0, std=210)",
		"gaussian(default) | sparsify(50%)",
		"gaussian(default) | sort(rows, 100%)",
		"gaussian(default) | zerolsb(8)",
	}
}

func predict(client *http.Client, addr string, req predictRequest) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(addr+"/predict", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

func predictBatch(client *http.Client, addr string, reqs []predictRequest) (*batchResponse, error) {
	buf, err := json.Marshal(batchRequest{Requests: reqs})
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(addr+"/predict/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	if len(br.Items) != len(reqs) {
		return nil, fmt.Errorf("batch returned %d items for %d requests", len(br.Items), len(reqs))
	}
	return &br, nil
}

func health(client *http.Client, addr string) *healthResponse {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		log.Printf("loadgen: healthz: %v", err)
		return nil
	}
	defer resp.Body.Close()
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		log.Printf("loadgen: healthz decode: %v", err)
		return nil
	}
	return &hr
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
