// Loadgen hammers a running powerserve instance with a mixed
// input-pattern workload at a fixed concurrency and reports
// throughput, latency percentiles and the server's cache hit-rate —
// the ROADMAP's "heavy traffic" scenario in miniature.
//
// Start the server, then:
//
//	go run ./examples/loadgen -addr http://localhost:8090 -c 64 -n 1024
//
// The default workload cycles a small set of patterns, so after the
// first pass almost every request is a cache hit; -unique switches to
// all-distinct patterns to measure the uncached simulation path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/patterns"
)

type predictRequest struct {
	Device  string `json:"device,omitempty"`
	DType   string `json:"dtype,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	Size    int    `json:"size,omitempty"`
}

type healthResponse struct {
	Status  string           `json:"status"`
	Metrics map[string]int64 `json:"metrics"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8090", "powerserve base URL")
		conc     = flag.Int("c", 64, "concurrent requests in flight")
		total    = flag.Int("n", 1024, "total requests")
		size     = flag.Int("size", 128, "GEMM dimension per request")
		dtype    = flag.String("dtype", "FP16", "datatype")
		patsFlag = flag.String("patterns", "", "semicolon-separated pattern DSLs (default: a mixed set of 8); patterns contain commas, so ';' separates")
		unique   = flag.Bool("unique", false, "make every request a distinct pattern (all cache misses)")
	)
	flag.Parse()

	pats := defaultPatterns()
	if *patsFlag != "" {
		pats = strings.Split(*patsFlag, ";")
	}
	// Canonicalize client-side: typos fail here with a parse position
	// instead of as a wall of HTTP 400s, and equivalent spellings
	// collapse onto the same server cache key.
	for i, p := range pats {
		canon, err := patterns.Canonicalize(p)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		pats[i] = canon
	}

	client := &http.Client{
		Timeout: 5 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        *conc,
			MaxIdleConnsPerHost: *conc,
		},
	}

	// One warm-up request pays the lazy predictor training so the
	// measured phase sees steady-state serving latency.
	if err := predict(client, *addr, predictRequest{
		DType: *dtype, Pattern: pats[0], Size: *size,
	}); err != nil {
		log.Fatalf("loadgen: warm-up request failed: %v", err)
	}
	before := health(client, *addr)

	jobs := make(chan int)
	latencies := make([]time.Duration, *total)
	errs := make([]error, *total)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pat := pats[i%len(pats)]
				if *unique {
					pat = fmt.Sprintf("constant(%d)", i)
				}
				t0 := time.Now()
				errs[i] = predict(client, *addr, predictRequest{
					DType: *dtype, Pattern: pat, Size: *size,
				})
				latencies[i] = time.Since(t0)
			}
		}()
	}
	for i := 0; i < *total; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	var failed int
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	after := health(client, *addr)

	fmt.Printf("loadgen: %d requests, %d in flight, %d patterns, size %d, dtype %s\n",
		*total, *conc, len(pats), *size, *dtype)
	fmt.Printf("  elapsed     : %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput  : %.0f req/s\n", float64(*total)/elapsed.Seconds())
	fmt.Printf("  latency p50 : %v\n", percentile(latencies, 0.50))
	fmt.Printf("  latency p90 : %v\n", percentile(latencies, 0.90))
	fmt.Printf("  latency p99 : %v\n", percentile(latencies, 0.99))
	fmt.Printf("  failures    : %d\n", failed)

	if before != nil && after != nil {
		hits := after.Metrics["serve.cache.hits"] - before.Metrics["serve.cache.hits"]
		misses := after.Metrics["serve.cache.misses"] - before.Metrics["serve.cache.misses"]
		if hits+misses > 0 {
			fmt.Printf("  cache hits  : %d/%d (%.1f%%)\n",
				hits, hits+misses, 100*float64(hits)/float64(hits+misses))
		}
		fmt.Printf("  simulations : %d\n", after.Metrics["serve.simulations"]-before.Metrics["serve.simulations"])
		fmt.Printf("  queue depth : max %d\n", after.Metrics["serve.queue.depth.max"])
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// defaultPatterns spans the paper's input axes so the workload mixes
// cheap and expensive bit patterns.
func defaultPatterns() []string {
	return []string{
		"gaussian(default)",
		"gaussian(mean=500, std=1)",
		"constant(7)",
		"constant(random)",
		"set(n=4, mean=0, std=210)",
		"gaussian(default) | sparsify(50%)",
		"gaussian(default) | sort(rows, 100%)",
		"gaussian(default) | zerolsb(8)",
	}
}

func predict(client *http.Client, addr string, req predictRequest) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(addr+"/predict", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

func health(client *http.Client, addr string) *healthResponse {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		log.Printf("loadgen: healthz: %v", err)
		return nil
	}
	defer resp.Body.Close()
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		log.Printf("loadgen: healthz decode: %v", err)
		return nil
	}
	return &hr
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
