package main

// The report's percentiles come from the shared obs latency histogram
// rather than a sorted sample array; this pins the contract that makes
// the swap safe: for every reported quantile, the histogram's answer
// brackets the exact sorted-sample percentile from above within the
// histogram's bucket resolution (≤25% relative error).

import (
	"sort"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

func TestReportedPercentilesAgreeWithExactSort(t *testing.T) {
	src := rng.New(42)
	hist := obs.NewLatencyHistogram()
	samples := make([]time.Duration, 0, 4096)
	for i := 0; i < 4096; i++ {
		// A latency-shaped spread: microseconds to hundreds of ms.
		d := time.Duration(1_000 + src.Intn(300_000_000))
		samples = append(samples, d)
		hist.ObserveDuration(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := hist.Snapshot()

	for _, q := range []float64{0.50, 0.95, 0.99} {
		rank := int(q * float64(len(samples)))
		if rank >= len(samples) {
			rank = len(samples) - 1
		}
		exact := samples[rank]
		got := percentile(snap, q)
		if got < exact {
			t.Errorf("p%.0f: histogram %v below exact %v", q*100, got, exact)
		}
		if limit := exact + exact/4 + 1; got > limit {
			t.Errorf("p%.0f: histogram %v exceeds exact %v by more than the 25%% bucket bound", q*100, got, exact)
		}
	}
}
