// llmweights demonstrates the paper's §V "power- and energy-efficient
// machine learning" directions on a transformer-like projection layer
// Y = X·W (X: tokens × d_model activations, W: d_model × d_model
// weights, FP16 on tensor cores — the AI-default setup, T7).
//
// Three tiers of intervention, ordered by deployment cost:
//
//  1. FREE — a single global permutation of the reduction dimension
//     (weights' rows + upstream neurons), per the permutation-invariant
//     transformation idea (§V / PIT [46]). Honest result: on weights
//     without strong per-channel structure this is a weak lever,
//     because one permutation cannot make every column's stream
//     monotone. The example reports whatever it measures.
//
//  2. BIAS FOLD — shifting weight values toward a larger mean (T2),
//     compensated in the layer bias.
//
//  3. GATHER KERNEL — per-neuron weight sorting (T11 at full strength):
//     every FMA lane consumes a monotone operand stream. Requires a
//     kernel that can gather each neuron's inputs through its own index
//     table; the example verifies bit-level equivalence through the
//     gather semantics.
//
// Plus power-aware magnitude pruning (T12) and the combination.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/matrix"
	"repro/internal/optimize"
	"repro/internal/rng"
)

const (
	tokens = 1024
	dModel = 1024
)

func main() {
	sim, err := core.NewSimulator(device.A100PCIe())
	if err != nil {
		log.Fatal(err)
	}
	dt := matrix.FP16T

	// Activations: token embeddings, roughly unit scale.
	x := matrix.New(dt, tokens, dModel)
	src := rng.New(42)
	for i := range x.Bits {
		x.Bits[i] = dt.Encode(src.Gaussian(0, 1))
	}

	// Weights with mild per-input-channel scale structure (4 binades,
	// shuffled), the kind of channel variance real checkpoints show.
	w := matrix.New(dt, dModel, dModel)
	scales := make([]float64, dModel)
	for i := range scales {
		scales[i] = 0.01 * math.Exp2(4*float64(i)/dModel)
	}
	src.Shuffle(dModel, func(a, b int) { scales[a], scales[b] = scales[b], scales[a] })
	for i := 0; i < dModel; i++ {
		for j := 0; j < dModel; j++ {
			w.SetValue(i, j, src.Gaussian(0, scales[i]))
		}
	}

	opts := core.DefaultOptions()
	opts.TransposeB = false // operands already in (K,M) layout
	opts.SampleOutputs = 128

	measure := func(a, b *matrix.Matrix) *core.Measurement {
		m, err := sim.MeasureGEMM(a, b, opts)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	baseline := measure(x.Clone(), w.Clone())
	fmt.Printf("LLM projection layer on %s: %d tokens × %d dims (%v)\n\n",
		sim.Device().Name, tokens, dModel, dt)
	fmt.Printf("%-42s %10s %9s\n", "configuration", "power (W)", "savings")
	fmt.Printf("%-42s %10.1f %9s\n", "baseline", baseline.AvgPowerW, "-")

	// Tier 1 (free): global toggle-aware K permutation.
	wPerm := w.Clone()
	res := optimize.OrderRowsByToggles(wPerm, 64, rng.New(7))
	xPerm := x.Clone()
	if err := optimize.PermuteColumns(xPerm, res.Perm); err != nil {
		log.Fatal(err)
	}
	permuted := measure(xPerm, wPerm)
	report("free: global K permutation (PIT)", permuted, baseline)

	// Tier 2: mean shift, folded into the bias (b' = b − Δ·Σx).
	wShift := w.Clone()
	shift := optimize.MeanShift(wShift, 8)
	shifted := measure(x.Clone(), wShift)
	report(fmt.Sprintf("bias fold: mean shift (Δ=%.2f)", shift.Delta), shifted, baseline)

	// Tier 3: per-neuron sorted weights on a gather kernel.
	wGather := w.Clone()
	gather := optimize.SortPerNeuron(wGather)
	gathered := measure(x.Clone(), wGather)
	report("gather kernel: per-neuron sorted", gathered, baseline)
	verifyGatherEquivalence(w, wGather, gather)

	// Power-aware sparsity (T12).
	wPruned := w.Clone()
	pr := optimize.MagnitudePrune(wPruned, 0.5)
	pruned := measure(x.Clone(), wPruned)
	report(fmt.Sprintf("magnitude pruning (%.0f%%)", pr.AchievedSparsity*100), pruned, baseline)

	// Combined: per-neuron sort + pruning.
	wBoth := w.Clone()
	optimize.MagnitudePrune(wBoth, 0.5)
	optimize.SortPerNeuron(wBoth)
	both := measure(x.Clone(), wBoth)
	report("gather + pruning", both, baseline)

	fmt.Println("\nEvery configuration runs the identical kernel schedule — the runtime")
	fmt.Println("column of the paper's Fig. 1 — so all savings are switching activity.")
	fmt.Println("Note the free permutation is honestly weak (one permutation cannot sort")
	fmt.Println("every column); the paper-scale savings need the gather-capable kernel.")
}

func report(name string, m, base *core.Measurement) {
	fmt.Printf("%-42s %10.1f %8.1f%%\n",
		name, m.AvgPowerW, 100*(base.AvgPowerW-m.AvgPowerW)/base.AvgPowerW)
}

// verifyGatherEquivalence checks a few neurons' outputs computed through
// the gather tables against the original dot products.
func verifyGatherEquivalence(orig, sorted *matrix.Matrix, res optimize.SortPerNeuronResult) {
	src := rng.New(99)
	xv := make([]float64, orig.Rows)
	for i := range xv {
		xv[i] = src.Gaussian(0, 1)
	}
	var maxRel float64
	for _, j := range []int{0, 7, 511, 1023} {
		var want float64
		for k := 0; k < orig.Rows; k++ {
			want += orig.Value(k, j) * xv[k]
		}
		got, err := optimize.GatherApply(sorted, j, res.Gather[j], xv)
		if err != nil {
			log.Fatal(err)
		}
		rel := math.Abs(got-want) / math.Max(1e-12, math.Abs(want))
		if rel > maxRel {
			maxRel = rel
		}
	}
	fmt.Printf("  (gather equivalence on sampled neurons: max relative deviation %.2e)\n", maxRel)
}
