// powercap demonstrates "data pruning for power capping" (§I, §V): an
// operator must keep a GEMM-heavy workload under a board power budget
// without touching clocks. Instead of DVFS (which costs runtime), the
// input data is made progressively sparser until the §V input-dependent
// power model predicts the cap is met, then the choice is validated
// with a full simulated measurement.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/matrix"
	"repro/internal/patterns"
)

func main() {
	sim, err := core.NewSimulator(device.A100PCIe())
	if err != nil {
		log.Fatal(err)
	}
	const (
		size = 1024
		// The cap must sit between the all-zero floor (static + issue
		// power survive any input change) and the dense baseline;
		// ~150 W is a realistic oversubscription trim at this size.
		cap = 150.0
	)
	dt := matrix.FP16
	opts := core.DefaultOptions()
	opts.SampleOutputs = 128

	// Train the input-dependent power model (§V) once, on a small
	// corpus of sparsity patterns.
	training := []string{
		"gaussian(default)",
		"gaussian(default) | sparsify(20%)",
		"gaussian(default) | sparsify(40%)",
		"gaussian(default) | sparsify(60%)",
		"gaussian(default) | sparsify(80%)",
		"gaussian(default) | zerolsb(4)",
		"constant(random)",
	}
	pred, r2, err := sim.TrainPredictor(dt, []int{512, 768, 1024}, training, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power model trained: R² = %.4f\n", r2)
	fmt.Printf("  static %.1f W, issue %.2f pJ, operand %.3f pJ/toggle, mult %.4f pJ/pp\n\n",
		pred.Weights[0], pred.Weights[1], pred.Weights[2], pred.Weights[3])

	baseline, err := sim.MeasureDSL(dt, size, "gaussian(default)", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline power %.1f W, cap %.1f W\n", baseline.AvgPowerW, cap)
	if baseline.AvgPowerW <= cap {
		fmt.Println("already under cap; nothing to do")
		return
	}

	// Binary-search the sparsity level using model predictions only
	// (cheap), then validate with one measurement (expensive).
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 12; iter++ {
		mid := (lo + hi) / 2
		m, err := sim.MeasurePattern(dt, size,
			patterns.GaussianDefault().Sparse(mid), opts)
		if err != nil {
			log.Fatal(err)
		}
		predicted := pred.Predict(m.Features)
		if predicted > cap {
			lo = mid
		} else {
			hi = mid
		}
	}
	chosen := hi
	fmt.Printf("model selects sparsity %.1f%%\n", chosen*100)

	final, err := sim.MeasurePattern(dt, size, patterns.GaussianDefault().Sparse(chosen), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validated power %.1f W (predicted %.1f W)\n",
		final.AvgPowerW, pred.Predict(final.Features))
	fmt.Printf("runtime unchanged: %.1f µs vs baseline %.1f µs\n",
		final.IterTimeS*1e6, baseline.IterTimeS*1e6)
	if final.AvgPowerW <= cap+0.5 {
		fmt.Println("cap met without any frequency scaling")
	} else {
		fmt.Println("cap not quite met — model/measurement gap; tighten with one more step")
	}
}
